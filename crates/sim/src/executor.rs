//! The discrete-event simulation core.
//!
//! A [`Sim`] owns a virtual clock, an event queue, and a single-threaded
//! executor for non-`Send` futures. Everything above this layer — network
//! fabric, node schedulers, thread packages — is built from two primitives:
//!
//! * **events**: closures that run at a chosen virtual time, and
//! * **tasks**: futures polled when explicitly readied or woken.
//!
//! Determinism: events at equal times run in scheduling order (a monotone
//! sequence number breaks ties), tasks run in wake order, and all randomness
//! flows from one seeded generator. Two runs with the same seed produce
//! bit-identical traces.
//!
//! # Hot-path layout
//!
//! The event queue is an indexed [calendar queue](crate::calq) rather than
//! a global binary heap: pushes and pops are `O(1)` in the common case.
//! Event actions live in a generation-tagged slab indexed by the queue
//! entry itself, so firing an event touches no hash map; cancellation just
//! bumps the slot's generation, turning the queue entry stale in `O(1)`.
//! Task wakers are created once per task (not per poll), wake drains swap
//! a recycled scratch buffer instead of allocating, and the task table uses
//! a trivial multiplicative hasher — task ids are dense monotone integers,
//! so SipHash buys nothing.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::hash::{BuildHasherDefault, Hasher};
use std::marker::PhantomData;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use oam_model::{Dur, Time};

use crate::calq::{CalendarQueue, Entry};
use crate::rng::Prng;

/// Identifier of a scheduled event, usable for cancellation.
///
/// Packs the event's slab slot and the slot's generation at scheduling
/// time; once the event fires or is cancelled the generation moves on and
/// the id goes permanently stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Identifier of a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(u64);

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Inline capacity of an [`EventAction`], in `usize` words. 48 bytes holds
/// every closure the network fabric and timers schedule (a couple of `Rc`
/// handles plus a few scalars); anything bigger spills to a `Box`.
const ACTION_WORDS: usize = 6;

/// A type-erased `FnOnce(&Sim)` with small-closure optimization: closures
/// up to `ACTION_WORDS` words (and word alignment) are stored inline in
/// the event slab, making the schedule → fire cycle allocation-free. The
/// event path runs a few million times per simulated second, so the
/// per-event `Box` this replaces was the simulator's single largest
/// allocation source.
struct EventAction {
    /// The closure's bytes (inline case) or a `Box<dyn FnOnce(&Sim)>`
    /// (spilled case).
    buf: MaybeUninit<[usize; ACTION_WORDS]>,
    /// Moves the closure out of `buf` and runs it.
    call: unsafe fn(*mut u8, &Sim),
    /// Drops the closure in place without running it (cancellation).
    drop_in_place: unsafe fn(*mut u8),
    /// Captured state is single-threaded (`Rc`, `Cell`); keep the erased
    /// container `!Send + !Sync` like the `Box<dyn FnOnce>` it replaces.
    _not_send: PhantomData<*mut ()>,
}

impl EventAction {
    fn new<F: FnOnce(&Sim) + 'static>(f: F) -> Self {
        unsafe fn call_inline<F: FnOnce(&Sim)>(p: *mut u8, sim: &Sim) {
            // SAFETY: `p` holds a valid `F` written by `new`; reading it
            // moves ownership here, and the caller never touches it again.
            unsafe { (p.cast::<F>()).read()(sim) }
        }
        unsafe fn drop_inline<F>(p: *mut u8) {
            // SAFETY: as above; drop consumes the stored closure.
            unsafe { p.cast::<F>().drop_in_place() }
        }
        type Spilled = Box<dyn FnOnce(&Sim)>;
        unsafe fn call_spilled(p: *mut u8, sim: &Sim) {
            // SAFETY: `p` holds the `Box` written by `new`'s spill path.
            unsafe { (p.cast::<Spilled>()).read()(sim) }
        }
        unsafe fn drop_spilled(p: *mut u8) {
            // SAFETY: as above.
            unsafe { p.cast::<Spilled>().drop_in_place() }
        }

        let mut buf = MaybeUninit::<[usize; ACTION_WORDS]>::uninit();
        // Both branches of this size test are resolved per monomorphized
        // `F` at compile time.
        if size_of::<F>() <= size_of::<[usize; ACTION_WORDS]>()
            && align_of::<F>() <= align_of::<usize>()
        {
            // SAFETY: `f` fits the buffer in size and alignment; the value
            // is owned by the buffer from here on (`f` is moved, not
            // dropped).
            unsafe { buf.as_mut_ptr().cast::<F>().write(f) };
            EventAction {
                buf,
                call: call_inline::<F>,
                drop_in_place: drop_inline::<F>,
                _not_send: PhantomData,
            }
        } else {
            let boxed: Spilled = Box::new(f);
            // SAFETY: a fat `Box` pointer is two words — always fits.
            unsafe { buf.as_mut_ptr().cast::<Spilled>().write(boxed) };
            EventAction {
                buf,
                call: call_spilled,
                drop_in_place: drop_spilled,
                _not_send: PhantomData,
            }
        }
    }

    /// Run the stored closure, consuming it.
    fn invoke(self, sim: &Sim) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `call` moves the closure out of the buffer exactly once;
        // wrapping in `ManuallyDrop` ensures `drop_in_place` never sees the
        // moved-out bytes.
        unsafe { (this.call)(this.buf.as_mut_ptr().cast(), sim) }
    }
}

impl Drop for EventAction {
    fn drop(&mut self) {
        // Only reached when the action never ran (cancellation).
        // SAFETY: the buffer still owns a live closure.
        unsafe { (self.drop_in_place)(self.buf.as_mut_ptr().cast()) }
    }
}

/// One slab slot for an event action. `gen` counts how many times the slot
/// has been retired (fired or cancelled); queue entries and [`EventId`]s
/// snapshot the generation and are ignored once it moves on.
struct EventSlot {
    gen: u32,
    /// Node the event is attributed to (keyed mode); becomes the ambient
    /// owner while the action runs. Unused in legacy mode.
    owner: u32,
    action: Option<EventAction>,
}

/// Bit layout of a keyed event sequence number: `node:16 | class:4 |
/// counter:44`. Within one timestamp, events order by node, then class,
/// then per-node issue order — none of which depend on how nodes are
/// partitioned into shards, so the total (time, seq) order is identical
/// for any shard count.
const KEY_CLASS_SHIFT: u32 = 44;
const KEY_NODE_SHIFT: u32 = 48;
const KEY_COUNTER_MASK: u64 = (1 << KEY_CLASS_SHIFT) - 1;

/// Event class for ordinary node-attributed activity.
pub const KEY_CLASS_NODE: u32 = 0;
/// Event class for collective publish replicas (ordered after a node's
/// ordinary events at the same instant; the counter carries the reducer
/// id and round so replicas agree across shards without a node counter).
pub const KEY_CLASS_COLLECTIVE: u32 = 1;

/// Pack a partition-independent event key.
pub fn event_key(node: u32, class: u32, counter: u64) -> u64 {
    debug_assert!(node < (1 << 16), "node id exceeds key width");
    debug_assert!(class < (1 << 4), "event class exceeds key width");
    debug_assert!(counter <= KEY_COUNTER_MASK, "event counter exceeded 2^44");
    ((node as u64) << KEY_NODE_SHIFT) | ((class as u64) << KEY_CLASS_SHIFT) | counter
}

/// Keyed-mode state: per-node sequence counters and RNG streams, plus the
/// ambient owner node used to attribute events scheduled from node code.
struct KeyedState {
    counters: Vec<u64>,
    rngs: Vec<Prng>,
    owner: u32,
}

/// Multiplicative hasher for the task table. Task ids are dense monotone
/// `u64`s handed out by the executor itself — not attacker-controlled — so
/// a single Fibonacci multiply spreads them across buckets at a fraction
/// of SipHash's cost.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type TaskMap = HashMap<u64, TaskEntry, BuildHasherDefault<SeqHasher>>;

/// Wake requests posted by [`Waker`]s; drained by the run loop.
///
/// Wakers must be `Send + Sync` by contract even though this executor is
/// single-threaded, so the queue sits behind a (never contended) mutex.
#[derive(Default)]
struct WakeQueue {
    woken: Mutex<Vec<u64>>,
}

struct TaskWaker {
    id: u64,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.woken.lock().expect("wake queue poisoned").push(self.id);
    }
}

/// A live task: its future (taken while being polled), a waker built once
/// at spawn (cloning it is a refcount bump, not an allocation), and a flag
/// deduplicating entries in the ready queue.
struct TaskEntry {
    fut: Option<TaskFuture>,
    waker: Waker,
    queued: bool,
}

struct Inner {
    now: Time,
    next_seq: u64,
    next_task: u64,
    /// Pending events, min-ordered on (time, sequence): deterministic FIFO
    /// within a timestamp.
    queue: CalendarQueue,
    /// Event actions, indexed by the queue entries' slot/generation pairs.
    slots: Vec<EventSlot>,
    /// Retired slots available for reuse.
    free_slots: Vec<u32>,
    tasks: TaskMap,
    ready: VecDeque<u64>,
    /// Recycled buffer swapped with the wake queue on each drain.
    wake_scratch: Vec<u64>,
    rng: Prng,
    /// Partition-independent keying (sharded runs); `None` in legacy mode,
    /// where `next_seq` provides global scheduling-order tie-breaks.
    keyed: Option<KeyedState>,
    events_executed: u64,
    tasks_polled: u64,
    /// High-water mark of the event queue (pending entries, including
    /// stale cancelled ones), for capacity planning and perf harnesses.
    queue_peak: u64,
    /// Wall-clock time source (native backend); `None` in simulator mode.
    /// Lives here rather than on the `Sim` handle so the handle stays two
    /// words — closures capturing a `Sim` must keep fitting the event
    /// slab's inline buffer ([`ACTION_WORDS`]).
    wall: Option<Arc<WallClock>>,
}

impl Inner {
    /// Next tie-break key for an event attributed to the ambient owner:
    /// the global scheduling counter in legacy mode, the owner node's
    /// class-0 counter in keyed mode.
    fn next_key_ambient(&mut self) -> (u64, u32) {
        match self.keyed.as_mut() {
            Some(k) => {
                let node = k.owner;
                let c = k.counters[node as usize];
                k.counters[node as usize] += 1;
                (event_key(node, KEY_CLASS_NODE, c), node)
            }
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                (seq, 0)
            }
        }
    }

    /// Next tie-break key for an event explicitly attributed to `node`.
    /// Legacy mode ignores the attribution (bit-identical to
    /// [`Inner::next_key_ambient`]).
    fn next_key_for(&mut self, node: u32) -> (u64, u32) {
        match self.keyed.as_mut() {
            Some(k) => {
                let c = k.counters[node as usize];
                k.counters[node as usize] += 1;
                (event_key(node, KEY_CLASS_NODE, c), node)
            }
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                (seq, 0)
            }
        }
    }

    fn push_event(&mut self, at: Time, seq: u64, owner: u32, action: EventAction) -> EventId {
        let at = at.max(self.now);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                slot.action = Some(action);
                slot.owner = owner;
                s
            }
            None => {
                self.slots.push(EventSlot { gen: 0, owner, action: Some(action) });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.queue.push(Entry { t: at, seq, slot, gen });
        self.queue_peak = self.queue_peak.max(self.queue.len() as u64);
        EventId::new(slot, gen)
    }
}

/// A shared wall-clock time source for the native (host-threads) backend:
/// virtual `Time` measured as real nanoseconds elapsed since a common
/// origin. Every node's `Sim` in a native run holds the same clock, so
/// timestamps taken on different OS threads are comparable.
#[derive(Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// Start the clock: `now()` reads zero at this instant.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        WallClock { origin: std::time::Instant::now() }
    }

    /// Real time elapsed since the origin, as a virtual `Time`.
    pub fn now(&self) -> Time {
        Time::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

/// Handle to the simulation. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
    wakes: Arc<WakeQueue>,
}

impl Sim {
    /// Create a simulation whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: Time::ZERO,
                next_seq: 0,
                next_task: 0,
                queue: CalendarQueue::new(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                tasks: TaskMap::default(),
                ready: VecDeque::new(),
                wake_scratch: Vec::new(),
                rng: Prng::seed_from_u64(seed),
                keyed: None,
                events_executed: 0,
                tasks_polled: 0,
                queue_peak: 0,
                wall: None,
            })),
            wakes: Arc::new(WakeQueue::default()),
        }
    }

    /// Create a simulation in **keyed** mode: equal-time events order by a
    /// `(node, class, per-node counter)` key instead of global scheduling
    /// order, and each of the `nodes` simulated nodes gets its own RNG
    /// stream derived from `seed`. The resulting event order — and thus
    /// every result — is the same no matter how nodes are partitioned
    /// across shards.
    pub fn new_keyed(seed: u64, nodes: usize) -> Self {
        let sim = Sim::new(seed);
        {
            let mut inner = sim.inner.borrow_mut();
            inner.keyed = Some(KeyedState {
                counters: vec![0; nodes],
                rngs: (0..nodes)
                    .map(|n| {
                        // Distinct stream per node, stable across shard
                        // counts: mix the node id into the machine seed.
                        let stream = seed ^ (n as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        Prng::seed_from_u64(stream)
                    })
                    .collect(),
                owner: 0,
            });
        }
        sim
    }

    /// Create a simulation in **native** mode: keyed (per-node RNG streams
    /// and partition-independent event keys, as [`Sim::new_keyed`]) but
    /// paced by `clock` — shared wall-clock time. Pending events become
    /// *due* once the wall clock reaches their timestamp; drive them with
    /// [`Sim::run_wall`]. [`Sim::now`] still reads the last fired event's
    /// time, which trails the clock by at most one batch.
    pub fn new_native(seed: u64, nodes: usize, clock: Arc<WallClock>) -> Self {
        let sim = Sim::new_keyed(seed, nodes);
        sim.inner.borrow_mut().wall = Some(clock);
        sim
    }

    /// Whether this simulation uses partition-independent event keys.
    pub fn is_keyed(&self) -> bool {
        self.inner.borrow().keyed.is_some()
    }

    /// Whether this simulation is driven by a wall clock (native backend).
    pub fn is_native(&self) -> bool {
        self.inner.borrow().wall.is_some()
    }

    /// Set the ambient owner node (keyed mode) and return the previous one.
    /// Node schedulers wrap their execution in a swap/restore pair so that
    /// events scheduled from node code are attributed to that node. No-op
    /// returning 0 in legacy mode.
    pub fn swap_owner(&self, node: u32) -> u32 {
        match self.inner.borrow_mut().keyed.as_mut() {
            Some(k) => std::mem::replace(&mut k.owner, node),
            None => 0,
        }
    }

    /// Allocate the next class-0 event key for `node` without scheduling
    /// anything. Used at shard boundaries: the source shard allocates the
    /// key while pumping, and the destination shard inserts the event under
    /// it, so both sides agree on the global order. Panics in legacy mode.
    pub fn alloc_key_for(&self, node: u32) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let k = inner.keyed.as_mut().expect("alloc_key_for requires keyed mode");
        let c = k.counters[node as usize];
        k.counters[node as usize] += 1;
        event_key(node, KEY_CLASS_NODE, c)
    }

    /// Current virtual time: the time of the last fired event. This holds
    /// in native mode too — events only fire once the wall clock reaches
    /// their timestamp (see [`Sim::run_wall`]), so logical time trails the
    /// shared [`WallClock`] by at most the in-progress batch. Code that
    /// needs the real current instant (watchdogs, wait-gap pacing) reads
    /// the clock directly; keeping `now` a plain field load keeps the
    /// simulator's hottest accessor branch-free.
    pub fn now(&self) -> Time {
        self.inner.borrow().now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.borrow().events_executed
    }

    /// Number of task polls performed so far.
    pub fn tasks_polled(&self) -> u64 {
        self.inner.borrow().tasks_polled
    }

    /// Number of events currently pending (including cancelled entries not
    /// yet garbage-collected).
    pub fn event_queue_depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// High-water mark of the event queue over the whole run.
    pub fn peak_event_queue_depth(&self) -> u64 {
        self.inner.borrow().queue_peak
    }

    /// Run `f` with the simulation's random-number generator.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut Prng) -> R) -> R {
        f(&mut self.inner.borrow_mut().rng)
    }

    /// Run `f` with the RNG stream that serves `node`: the per-node stream
    /// in keyed mode, the single global stream in legacy mode (preserving
    /// the draw order existing golden traces depend on).
    pub fn with_rng_for<R>(&self, node: u32, f: impl FnOnce(&mut Prng) -> R) -> R {
        let mut inner = self.inner.borrow_mut();
        match inner.keyed.as_mut() {
            Some(k) => f(&mut k.rngs[node as usize]),
            None => f(&mut inner.rng),
        }
    }

    /// Schedule `action` to run at absolute time `at` (clamped to `now` if
    /// already past). Returns an id usable with [`Sim::cancel`].
    ///
    /// In keyed mode the event is attributed to the ambient owner node
    /// (see [`Sim::swap_owner`]); use [`Sim::schedule_at_for`] to attribute
    /// it explicitly.
    pub fn schedule_at(&self, at: Time, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let (seq, owner) = inner.next_key_ambient();
        inner.push_event(at, seq, owner, EventAction::new(action))
    }

    /// Schedule `action` to run `after` from now.
    pub fn schedule_after(&self, after: Dur, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let at = self.now() + after;
        self.schedule_at(at, action)
    }

    /// Schedule `action` at `at`, attributed to `node`. Identical to
    /// [`Sim::schedule_at`] in legacy mode (same global sequence counter);
    /// in keyed mode the event takes `node`'s next class-0 key and runs
    /// with `node` as the ambient owner.
    pub fn schedule_at_for(
        &self,
        at: Time,
        node: u32,
        action: impl FnOnce(&Sim) + 'static,
    ) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let (seq, owner) = inner.next_key_for(node);
        inner.push_event(at, seq, owner, EventAction::new(action))
    }

    /// Schedule `action` `after` from now, attributed to `node`.
    pub fn schedule_after_for(
        &self,
        after: Dur,
        node: u32,
        action: impl FnOnce(&Sim) + 'static,
    ) -> EventId {
        let at = self.now() + after;
        self.schedule_at_for(at, node, action)
    }

    /// Insert an event under a pre-allocated key (keyed mode only). This is
    /// the shard-boundary primitive: the key was allocated on the shard
    /// that owns its node (via [`Sim::alloc_key_for`] or [`event_key`]),
    /// and the event body runs on the shard inserting it. No counter is
    /// touched here.
    pub fn schedule_at_raw(
        &self,
        at: Time,
        seq: u64,
        owner: u32,
        action: impl FnOnce(&Sim) + 'static,
    ) -> EventId {
        let mut inner = self.inner.borrow_mut();
        debug_assert!(inner.keyed.is_some(), "schedule_at_raw requires keyed mode");
        inner.push_event(at, seq, owner, EventAction::new(action))
    }

    /// Cancel a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&self, id: EventId) -> bool {
        let mut inner = self.inner.borrow_mut();
        let slot = id.slot();
        match inner.slots.get_mut(slot as usize) {
            Some(s) if s.gen == id.gen() && s.action.is_some() => {
                s.action = None;
                s.gen = s.gen.wrapping_add(1);
                inner.free_slots.push(slot);
                true
            }
            _ => false,
        }
    }

    /// Spawn a task; it will be polled on the next run-loop iteration.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_task;
        inner.next_task += 1;
        let waker: Waker = Arc::new(TaskWaker { id, queue: Arc::clone(&self.wakes) }).into();
        inner.tasks.insert(id, TaskEntry { fut: Some(Box::pin(fut)), waker, queued: true });
        inner.ready.push_back(id);
        TaskId(id)
    }

    /// Number of live (spawned, not yet completed) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().tasks.len()
    }

    /// Drive the simulation until no task is ready, no wake is pending, and
    /// no event remains. Returns the final virtual time.
    ///
    /// Tasks still blocked at quiescence (e.g. waiting on a message that
    /// never comes) are simply left pending; callers that consider this a
    /// bug can check [`Sim::live_tasks`].
    pub fn run(&self) -> Time {
        loop {
            self.drain_wakes();
            let next_ready = self.inner.borrow_mut().ready.pop_front();
            if let Some(tid) = next_ready {
                self.poll_task(tid);
                continue;
            }
            if !self.fire_next_event() {
                break;
            }
        }
        self.now()
    }

    /// Drive the simulation, but stop (returning `false`) once virtual time
    /// would exceed `deadline` with work still outstanding. Used by tests to
    /// bound runaway scenarios. Returns `true` on quiescence.
    pub fn run_with_deadline(&self, deadline: Time) -> bool {
        loop {
            self.drain_wakes();
            let next_ready = self.inner.borrow_mut().ready.pop_front();
            if let Some(tid) = next_ready {
                self.poll_task(tid);
                continue;
            }
            if self.peek_event_time().is_none_or(|t| t > deadline) {
                let idle = self.peek_event_time().is_none();
                return idle;
            }
            self.fire_next_event();
        }
    }

    /// Drive the simulation until every ready task and pending wake is
    /// drained and the earliest remaining event is at or beyond `limit`.
    /// Returns the time of that earliest event, or `None` if none remain.
    ///
    /// This is the shard worker's epoch step: with a conservative fence it
    /// is safe to fire everything strictly before `limit` because no other
    /// shard can inject an effect earlier than the fence.
    pub fn run_before(&self, limit: Time) -> Option<Time> {
        self.run_before_counted(limit).0
    }

    /// As [`Sim::run_before`], but also report whether any task polled or
    /// event fired inside the window. An idle window cannot have produced
    /// new cross-shard effects, so the epoch engine skips its outbox scans
    /// entirely — the returned time doubles as the exact next-event report
    /// for the fence agreement, saving a second queue peek.
    pub fn run_before_counted(&self, limit: Time) -> (Option<Time>, bool) {
        let mut ran = false;
        loop {
            self.drain_wakes();
            let next_ready = self.inner.borrow_mut().ready.pop_front();
            if let Some(tid) = next_ready {
                self.poll_task(tid);
                ran = true;
                continue;
            }
            match self.peek_event_time() {
                Some(t) if t < limit => {
                    self.fire_next_event();
                    ran = true;
                }
                other => return (other, ran),
            }
        }
    }

    /// Native-mode pass: poll ready tasks and fire every event whose
    /// timestamp the wall clock has reached, up to `max_events` firings so
    /// that callers under a dense event stream still get back regularly to
    /// check stop flags and incoming channels. Returns the earliest
    /// pending event time (which may already be due if the batch bound was
    /// hit), or `None` when the queue is empty.
    pub fn run_wall(&self, max_events: u64) -> Option<Time> {
        let clock = Arc::clone(
            self.inner.borrow().wall.as_ref().expect("run_wall requires a native-mode sim"),
        );
        let mut fired = 0u64;
        loop {
            self.drain_wakes();
            let next_ready = self.inner.borrow_mut().ready.pop_front();
            if let Some(tid) = next_ready {
                self.poll_task(tid);
                continue;
            }
            match self.peek_event_time() {
                Some(t) if t <= clock.now() => {
                    if fired >= max_events {
                        return Some(t);
                    }
                    self.fire_next_event();
                    fired += 1;
                }
                other => return other,
            }
        }
    }

    /// The earliest pending event time without firing it. Shard workers
    /// re-peek after integrating cross-shard records (which may schedule
    /// events earlier than what [`Sim::run_before`] reported).
    pub fn next_event_time(&self) -> Option<Time> {
        self.peek_event_time()
    }

    fn peek_event_time(&self) -> Option<Time> {
        let mut inner = self.inner.borrow_mut();
        // Discard stale (cancelled) queue entries.
        while let Some(e) = inner.queue.peek() {
            if inner.slots[e.slot as usize].gen == e.gen {
                return Some(e.t);
            }
            inner.queue.pop();
        }
        None
    }

    fn drain_wakes(&self) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let mut scratch = std::mem::take(&mut inner.wake_scratch);
        {
            let mut q = self.wakes.woken.lock().expect("wake queue poisoned");
            if q.is_empty() {
                inner.wake_scratch = scratch;
                return;
            }
            // Swap buffers: the wake queue gets the (empty, pre-sized)
            // scratch Vec back, so steady-state draining never allocates.
            std::mem::swap(&mut *q, &mut scratch);
        }
        for &id in &scratch {
            // Skip completed tasks and dedupe tasks already queued.
            if let Some(entry) = inner.tasks.get_mut(&id) {
                if !entry.queued {
                    entry.queued = true;
                    inner.ready.push_back(id);
                }
            }
        }
        scratch.clear();
        inner.wake_scratch = scratch;
    }

    /// Fire the earliest pending event, advancing the clock. Returns `false`
    /// if no event remains.
    fn fire_next_event(&self) -> bool {
        let action = {
            let mut inner = self.inner.borrow_mut();
            loop {
                match inner.queue.pop() {
                    None => return false,
                    Some(e) => {
                        let s = &mut inner.slots[e.slot as usize];
                        if s.gen != e.gen {
                            // Stale entry for a cancelled event.
                            continue;
                        }
                        let action = s.action.take().expect("live slot has an action");
                        let owner = s.owner;
                        s.gen = s.gen.wrapping_add(1);
                        inner.free_slots.push(e.slot);
                        debug_assert!(e.t >= inner.now, "event queue went backwards");
                        inner.now = e.t;
                        inner.events_executed += 1;
                        if let Some(k) = inner.keyed.as_mut() {
                            k.owner = owner;
                        }
                        break action;
                    }
                }
            }
        };
        action.invoke(self);
        true
    }

    fn poll_task(&self, tid: u64) {
        let (mut fut, waker) = {
            let mut inner = self.inner.borrow_mut();
            match inner.tasks.get_mut(&tid) {
                // Empty `fut`: task is already being polled (re-entrant
                // wake); absent key: task completed. Nothing to do either
                // way.
                Some(entry) => {
                    entry.queued = false;
                    match entry.fut.take() {
                        Some(f) => (f, entry.waker.clone()),
                        None => return,
                    }
                }
                None => return,
            }
        };
        let mut cx = Context::from_waker(&waker);
        self.inner.borrow_mut().tasks_polled += 1;
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.borrow_mut().tasks.remove(&tid);
            }
            Poll::Pending => {
                let mut inner = self.inner.borrow_mut();
                if let Some(entry) = inner.tasks.get_mut(&tid) {
                    entry.fut = Some(fut);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let (l1, l2, l3, l4) = (log.clone(), log.clone(), log.clone(), log.clone());
        sim.schedule_at(Time::from_nanos(20), move |_| l2.borrow_mut().push(2));
        sim.schedule_at(Time::from_nanos(10), move |_| l1.borrow_mut().push(1));
        sim.schedule_at(Time::from_nanos(20), move |_| l3.borrow_mut().push(3));
        sim.schedule_at(Time::from_nanos(30), move |_| l4.borrow_mut().push(4));
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
        assert_eq!(end, Time::from_nanos(30));
        assert_eq!(sim.events_executed(), 4);
    }

    #[test]
    fn clock_only_moves_forward_and_clamps_past_events() {
        let sim = Sim::new(1);
        let seen = Rc::new(Cell::new(Time::ZERO));
        let s2 = seen.clone();
        sim.schedule_at(Time::from_nanos(50), move |sim| {
            // Scheduling "in the past" clamps to now.
            let s3 = s2.clone();
            sim.schedule_at(Time::from_nanos(10), move |sim| s3.set(sim.now()));
        });
        sim.run();
        assert_eq!(seen.get(), Time::from_nanos(50));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = Sim::new(1);
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_after(Dur::from_micros(1), move |_| h.set(h.get() + 1));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert_eq!(hits.get(), 0);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn event_ids_from_reused_slots_do_not_collide() {
        let sim = Sim::new(1);
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let a = sim.schedule_after(Dur::from_micros(1), move |_| h.set(h.get() + 1));
        assert!(sim.cancel(a));
        // The next schedule reuses `a`'s slab slot under a new generation;
        // the retired id must not be able to cancel it.
        let h = hits.clone();
        let b = sim.schedule_after(Dur::from_micros(2), move |_| h.set(h.get() + 10));
        assert!(!sim.cancel(a), "stale id must not cancel the slot's new occupant");
        sim.run();
        assert_eq!(hits.get(), 10, "replacement event still fires");
        assert!(!sim.cancel(b), "fired event reports false on cancel");
    }

    #[test]
    fn oversized_closures_spill_and_still_run_or_drop() {
        // Captures 128 bytes — far beyond the inline action buffer — to
        // force the spilled (boxed) path of `EventAction`.
        let sim = Sim::new(1);
        let big = [7u8; 128];
        let sum = Rc::new(Cell::new(0u32));
        let s = sum.clone();
        sim.schedule_after(Dur::from_micros(1), move |_| {
            s.set(big.iter().map(|&b| b as u32).sum());
        });
        sim.run();
        assert_eq!(sum.get(), 7 * 128);
    }

    #[test]
    fn cancelled_actions_drop_their_captures() {
        // The capture's destructor must run exactly once whether the event
        // fires, is cancelled, or (spilled case) is cancelled while boxed.
        struct DropCounter(Rc<Cell<u32>>);
        impl Drop for DropCounter {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let drops = Rc::new(Cell::new(0u32));

        let sim = Sim::new(1);
        let small = DropCounter(drops.clone());
        let id = sim.schedule_after(Dur::from_micros(1), move |_| {
            let _keep = &small;
        });
        let big = DropCounter(drops.clone());
        let ballast = [0u8; 128];
        let id2 = sim.schedule_after(Dur::from_micros(1), move |_| {
            let _keep = (&big, &ballast);
        });
        assert!(sim.cancel(id) && sim.cancel(id2));
        assert_eq!(drops.get(), 2, "cancellation dropped both captures");
        sim.run();
        assert_eq!(drops.get(), 2, "no double drop after the run");
    }

    #[test]
    fn events_scheduled_from_events_nest() {
        let sim = Sim::new(1);
        let count = Rc::new(Cell::new(0u32));
        fn chain(sim: &Sim, count: Rc<Cell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            count.set(count.get() + 1);
            sim.schedule_after(Dur::from_micros(1), move |sim| chain(sim, count, left - 1));
        }
        let c = count.clone();
        sim.schedule_after(Dur::from_micros(1), move |sim| chain(sim, c, 5));
        let end = sim.run();
        assert_eq!(count.get(), 5);
        // chain(0) still fires (as a no-op) one microsecond after chain(1).
        assert_eq!(end, Time::from_nanos(6_000));
    }

    #[test]
    fn tasks_run_and_complete() {
        let sim = Sim::new(1);
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.spawn(async move {
            d.set(true);
        });
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert!(done.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn deterministic_rng_across_same_seed() {
        let a = Sim::new(42).with_rng(|r| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        let b = Sim::new(42).with_rng(|r| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        let c = Sim::new(43).with_rng(|r| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_with_deadline_stops_before_far_events() {
        let sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        sim.schedule_at(Time::from_nanos(1_000_000), move |_| f.set(true));
        let quiesced = sim.run_with_deadline(Time::from_nanos(100));
        assert!(!quiesced);
        assert!(!fired.get());
        assert_eq!(sim.now(), Time::ZERO, "clock must not pass the deadline");
    }
}
