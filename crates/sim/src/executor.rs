//! The discrete-event simulation core.
//!
//! A [`Sim`] owns a virtual clock, an event queue, and a single-threaded
//! executor for non-`Send` futures. Everything above this layer — network
//! fabric, node schedulers, thread packages — is built from two primitives:
//!
//! * **events**: closures that run at a chosen virtual time, and
//! * **tasks**: futures polled when explicitly readied or woken.
//!
//! Determinism: events at equal times run in scheduling order (a monotone
//! sequence number breaks ties), tasks run in wake order, and all randomness
//! flows from one seeded generator. Two runs with the same seed produce
//! bit-identical traces.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use oam_model::{Dur, Time};

use crate::rng::Prng;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Identifier of a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(u64);

type EventAction = Box<dyn FnOnce(&Sim)>;
type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Wake requests posted by [`Waker`]s; drained by the run loop.
///
/// Wakers must be `Send + Sync` by contract even though this executor is
/// single-threaded, so the queue sits behind a (never contended) mutex.
#[derive(Default)]
struct WakeQueue {
    woken: Mutex<Vec<u64>>,
}

struct TaskWaker {
    id: u64,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.woken.lock().expect("wake queue poisoned").push(self.id);
    }
}

struct Inner {
    now: Time,
    next_event: u64,
    next_task: u64,
    /// Min-heap on (time, sequence): deterministic FIFO within a timestamp.
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    /// Actions keyed by sequence number; a missing entry means the event
    /// was cancelled and its heap entry is stale.
    actions: HashMap<u64, EventAction>,
    tasks: HashMap<u64, Option<TaskFuture>>,
    ready: VecDeque<u64>,
    rng: Prng,
    events_executed: u64,
    tasks_polled: u64,
}

/// Handle to the simulation. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
    wakes: Arc<WakeQueue>,
}

impl Sim {
    /// Create a simulation whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: Time::ZERO,
                next_event: 0,
                next_task: 0,
                heap: BinaryHeap::new(),
                actions: HashMap::new(),
                tasks: HashMap::new(),
                ready: VecDeque::new(),
                rng: Prng::seed_from_u64(seed),
                events_executed: 0,
                tasks_polled: 0,
            })),
            wakes: Arc::new(WakeQueue::default()),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.inner.borrow().now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.borrow().events_executed
    }

    /// Number of task polls performed so far.
    pub fn tasks_polled(&self) -> u64 {
        self.inner.borrow().tasks_polled
    }

    /// Run `f` with the simulation's random-number generator.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut Prng) -> R) -> R {
        f(&mut self.inner.borrow_mut().rng)
    }

    /// Schedule `action` to run at absolute time `at` (clamped to `now` if
    /// already past). Returns an id usable with [`Sim::cancel`].
    pub fn schedule_at(&self, at: Time, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let seq = inner.next_event;
        inner.next_event += 1;
        inner.heap.push(Reverse((at, seq)));
        inner.actions.insert(seq, Box::new(action));
        EventId(seq)
    }

    /// Schedule `action` to run `after` from now.
    pub fn schedule_after(&self, after: Dur, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let at = self.now() + after;
        self.schedule_at(at, action)
    }

    /// Cancel a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&self, id: EventId) -> bool {
        self.inner.borrow_mut().actions.remove(&id.0).is_some()
    }

    /// Spawn a task; it will be polled on the next run-loop iteration.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_task;
        inner.next_task += 1;
        inner.tasks.insert(id, Some(Box::pin(fut)));
        inner.ready.push_back(id);
        TaskId(id)
    }

    /// Number of live (spawned, not yet completed) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().tasks.len()
    }

    /// Drive the simulation until no task is ready, no wake is pending, and
    /// no event remains. Returns the final virtual time.
    ///
    /// Tasks still blocked at quiescence (e.g. waiting on a message that
    /// never comes) are simply left pending; callers that consider this a
    /// bug can check [`Sim::live_tasks`].
    pub fn run(&self) -> Time {
        loop {
            self.drain_wakes();
            let next_ready = self.inner.borrow_mut().ready.pop_front();
            if let Some(tid) = next_ready {
                self.poll_task(tid);
                continue;
            }
            if !self.fire_next_event() {
                break;
            }
        }
        self.now()
    }

    /// Drive the simulation, but stop (returning `false`) once virtual time
    /// would exceed `deadline` with work still outstanding. Used by tests to
    /// bound runaway scenarios. Returns `true` on quiescence.
    pub fn run_with_deadline(&self, deadline: Time) -> bool {
        loop {
            self.drain_wakes();
            let next_ready = self.inner.borrow_mut().ready.pop_front();
            if let Some(tid) = next_ready {
                self.poll_task(tid);
                continue;
            }
            if self.peek_event_time().is_none_or(|t| t > deadline) {
                let idle = self.peek_event_time().is_none();
                return idle;
            }
            self.fire_next_event();
        }
    }

    fn peek_event_time(&self) -> Option<Time> {
        let mut inner = self.inner.borrow_mut();
        // Discard stale (cancelled) heap entries.
        while let Some(Reverse((t, seq))) = inner.heap.peek().copied() {
            if inner.actions.contains_key(&seq) {
                return Some(t);
            }
            inner.heap.pop();
        }
        None
    }

    fn drain_wakes(&self) {
        let woken: Vec<u64> = {
            let mut q = self.wakes.woken.lock().expect("wake queue poisoned");
            std::mem::take(&mut *q)
        };
        if woken.is_empty() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        for id in woken {
            // Skip completed tasks and dedupe tasks already queued.
            if inner.tasks.contains_key(&id) && !inner.ready.contains(&id) {
                inner.ready.push_back(id);
            }
        }
    }

    /// Fire the earliest pending event, advancing the clock. Returns `false`
    /// if no event remains.
    fn fire_next_event(&self) -> bool {
        let action = {
            let mut inner = self.inner.borrow_mut();
            loop {
                match inner.heap.pop() {
                    None => return false,
                    Some(Reverse((t, seq))) => {
                        if let Some(action) = inner.actions.remove(&seq) {
                            debug_assert!(t >= inner.now, "event queue went backwards");
                            inner.now = t;
                            inner.events_executed += 1;
                            break action;
                        }
                        // Stale entry for a cancelled event: keep popping.
                    }
                }
            }
        };
        action(self);
        true
    }

    fn poll_task(&self, tid: u64) {
        let fut = {
            let mut inner = self.inner.borrow_mut();
            match inner.tasks.get_mut(&tid) {
                // `None` slot: task is already being polled (re-entrant wake);
                // absent key: task completed. Either way nothing to do.
                Some(slot) => match slot.take() {
                    Some(f) => f,
                    None => return,
                },
                None => return,
            }
        };
        let waker: Waker = Arc::new(TaskWaker { id: tid, queue: Arc::clone(&self.wakes) }).into();
        let mut cx = Context::from_waker(&waker);
        let mut fut = fut;
        self.inner.borrow_mut().tasks_polled += 1;
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.borrow_mut().tasks.remove(&tid);
            }
            Poll::Pending => {
                let mut inner = self.inner.borrow_mut();
                if let Some(slot) = inner.tasks.get_mut(&tid) {
                    *slot = Some(fut);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let (l1, l2, l3, l4) = (log.clone(), log.clone(), log.clone(), log.clone());
        sim.schedule_at(Time::from_nanos(20), move |_| l2.borrow_mut().push(2));
        sim.schedule_at(Time::from_nanos(10), move |_| l1.borrow_mut().push(1));
        sim.schedule_at(Time::from_nanos(20), move |_| l3.borrow_mut().push(3));
        sim.schedule_at(Time::from_nanos(30), move |_| l4.borrow_mut().push(4));
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
        assert_eq!(end, Time::from_nanos(30));
        assert_eq!(sim.events_executed(), 4);
    }

    #[test]
    fn clock_only_moves_forward_and_clamps_past_events() {
        let sim = Sim::new(1);
        let seen = Rc::new(Cell::new(Time::ZERO));
        let s2 = seen.clone();
        sim.schedule_at(Time::from_nanos(50), move |sim| {
            // Scheduling "in the past" clamps to now.
            let s3 = s2.clone();
            sim.schedule_at(Time::from_nanos(10), move |sim| s3.set(sim.now()));
        });
        sim.run();
        assert_eq!(seen.get(), Time::from_nanos(50));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = Sim::new(1);
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_after(Dur::from_micros(1), move |_| h.set(h.get() + 1));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert_eq!(hits.get(), 0);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn events_scheduled_from_events_nest() {
        let sim = Sim::new(1);
        let count = Rc::new(Cell::new(0u32));
        fn chain(sim: &Sim, count: Rc<Cell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            count.set(count.get() + 1);
            sim.schedule_after(Dur::from_micros(1), move |sim| chain(sim, count, left - 1));
        }
        let c = count.clone();
        sim.schedule_after(Dur::from_micros(1), move |sim| chain(sim, c, 5));
        let end = sim.run();
        assert_eq!(count.get(), 5);
        // chain(0) still fires (as a no-op) one microsecond after chain(1).
        assert_eq!(end, Time::from_nanos(6_000));
    }

    #[test]
    fn tasks_run_and_complete() {
        let sim = Sim::new(1);
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.spawn(async move {
            d.set(true);
        });
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert!(done.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn deterministic_rng_across_same_seed() {
        let a = Sim::new(42).with_rng(|r| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        let b = Sim::new(42).with_rng(|r| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        let c = Sim::new(43).with_rng(|r| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_with_deadline_stops_before_far_events() {
        let sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        sim.schedule_at(Time::from_nanos(1_000_000), move |_| f.set(true));
        let quiesced = sim.run_with_deadline(Time::from_nanos(100));
        assert!(!quiesced);
        assert!(!fired.get());
        assert_eq!(sim.now(), Time::ZERO, "clock must not pass the deadline");
    }
}
