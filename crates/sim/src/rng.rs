//! Deterministic pseudo-random numbers for the simulation.
//!
//! The whole reproduction must be bit-reproducible from a single seed, so
//! the simulator owns its own small PRNG instead of pulling in an external
//! crate whose stream could change between versions. The generator is
//! xoshiro256** (public-domain algorithm by Blackman & Vigna), seeded
//! through splitmix64 — fast, tiny state, and more than good enough for
//! workload jitter, back-off randomization, and fault injection. It is
//! **not** cryptographically secure.

/// A seeded, deterministic pseudo-random number generator.
///
/// Obtain the simulation's generator through
/// [`Sim::with_rng`](crate::Sim::with_rng) so every consumer draws from one
/// stream in event order; constructing private instances is fine for
/// workload generation (for example city coordinates) where the stream is
/// independent of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Create a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64: expand the 64-bit seed into the 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Prng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniformly random bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Debiased via rejection sampling on the top of the range.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive on both ends).
    pub fn gen_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_inclusive: {lo} > {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range_f64: empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(8);
        let first: Vec<u64> = (0..8).map(|_| Prng::seed_from_u64(7).next_u64()).collect();
        assert!(first.iter().all(|v| *v == first[0]));
        assert_ne!(Prng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert!(r.gen_below(7) < 7);
            let v = r.gen_inclusive(10, 12);
            assert!((10..=12).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range_f64(-3.0, 4.5);
            assert!((-3.0..4.5).contains(&g));
        }
    }

    #[test]
    fn bernoulli_edge_probabilities_are_exact() {
        let mut r = Prng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        // A fair-ish coin lands on both sides within 10k draws.
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((3_000..7_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = Prng::seed_from_u64(5);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
