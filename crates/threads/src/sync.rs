//! Locks and condition variables (§3.1 of the paper).
//!
//! These are *per-node* primitives: the paper's threads synchronize within
//! a node; cross-node synchronization happens through RPC. Both primitives
//! are mode-aware:
//!
//! * in **thread** mode a contended `lock()` / false-condition `wait()`
//!   parks the thread and releases the processor;
//! * in **optimistic** mode they record the abort cause
//!   ([`AbortReason::LockHeld`] / [`AbortReason::ConditionFalse`]) and
//!   return `Pending`, leaving the provisional slot registered in the wait
//!   list — so a *promoted* continuation resumes exactly where the handler
//!   would have (lazy thread creation needs no undo);
//! * the rerun/NACK abort paths simply drop the futures, whose `Drop`
//!   impls deregister and, when a lock grant raced in, pass it on.
//!
//! Lock handoff is FIFO and direct (the releasing thread grants to the
//! longest waiter), which keeps scheduling deterministic.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use oam_model::AbortReason;

use crate::node::{ExecMode, Node};
use crate::sched::{BlockKind, Placement, ThreadId};

type WaitEntry = (ThreadId, Rc<Cell<bool>>);

struct MutexInner<T> {
    node: Node,
    locked: Cell<bool>,
    waiters: RefCell<VecDeque<WaitEntry>>,
    value: RefCell<T>,
}

/// A non-preemptive, FIFO-handoff mutex protecting a `T`.
pub struct Mutex<T> {
    inner: Rc<MutexInner<T>>,
}

impl<T> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Mutex<T> {
    /// Create a mutex on `node` guarding `value`.
    pub fn new(node: &Node, value: T) -> Self {
        Mutex {
            inner: Rc::new(MutexInner {
                node: node.clone(),
                locked: Cell::new(false),
                waiters: RefCell::new(VecDeque::new()),
                value: RefCell::new(value),
            }),
        }
    }

    /// Acquire the lock. Await point: may park the thread or abort an
    /// optimistic execution.
    pub fn lock(&self) -> LockFuture<T> {
        LockFuture { mutex: self.clone(), registration: None, acquired: false }
    }

    /// Non-blocking acquisition attempt (usable from hand-coded AM
    /// handlers, which must not block).
    pub fn try_lock(&self) -> Option<MutexGuard<T>> {
        if self.inner.locked.get() {
            None
        } else {
            self.inner.locked.set(true);
            self.inner.node.add_pending(self.inner.node.config().cost.mutex_op);
            Some(MutexGuard { mutex: self.clone(), released: false })
        }
    }

    /// Is the lock currently held?
    pub fn is_locked(&self) -> bool {
        self.inner.locked.get()
    }

    /// Number of threads waiting for the lock.
    pub fn waiters(&self) -> usize {
        self.inner.waiters.borrow().len()
    }

    /// Release: hand off to the longest waiter, or unlock.
    fn unlock(&self) {
        debug_assert!(self.inner.locked.get(), "unlock of an unlocked mutex");
        let next = self.inner.waiters.borrow_mut().pop_front();
        match next {
            Some((tid, granted)) => {
                granted.set(true);
                self.inner.node.make_runnable(tid, Placement::Front);
            }
            None => self.inner.locked.set(false),
        }
        self.inner.node.add_pending(self.inner.node.config().cost.mutex_op);
    }
}

/// RAII guard; the lock is released on drop. Access the protected value
/// through [`MutexGuard::with`] / [`MutexGuard::with_mut`].
pub struct MutexGuard<T> {
    mutex: Mutex<T>,
    released: bool,
}

impl<T> MutexGuard<T> {
    /// Read access to the protected value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.mutex.inner.value.borrow())
    }

    /// Mutable access to the protected value.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.mutex.inner.value.borrow_mut())
    }

    /// Copy the protected value out.
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        *self.mutex.inner.value.borrow()
    }

    /// Replace the protected value.
    pub fn set(&self, v: T) {
        *self.mutex.inner.value.borrow_mut() = v;
    }

    /// Explicit early release (equivalent to dropping the guard).
    pub fn unlock(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if !self.released {
            self.released = true;
            self.mutex.unlock();
        }
    }
}

impl<T> Drop for MutexGuard<T> {
    fn drop(&mut self) {
        self.release();
    }
}

/// Future returned by [`Mutex::lock`].
pub struct LockFuture<T> {
    mutex: Mutex<T>,
    /// `(tid, granted)` once parked in the wait list.
    registration: Option<WaitEntry>,
    acquired: bool,
}

impl<T> Future for LockFuture<T> {
    type Output = MutexGuard<T>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<MutexGuard<T>> {
        let this = self.get_mut();
        let node = this.mutex.inner.node.clone();
        if let Some((_tid, granted)) = &this.registration {
            if granted.get() {
                // Direct handoff: the releaser already made us the holder.
                this.registration = None;
                this.acquired = true;
                node.add_pending(node.config().cost.mutex_op);
                return Poll::Ready(MutexGuard { mutex: this.mutex.clone(), released: false });
            }
            // Spurious re-poll while still waiting.
            match node.mode() {
                ExecMode::Thread => node.set_block_kind(BlockKind::Blocked),
                ExecMode::Optimistic => node.set_abort_cause(AbortReason::LockHeld),
                ExecMode::AmInline => unreachable!("AM handlers cannot be re-polled"),
            }
            return Poll::Pending;
        }
        if !this.mutex.inner.locked.get() {
            this.mutex.inner.locked.set(true);
            this.acquired = true;
            node.add_pending(node.config().cost.mutex_op);
            return Poll::Ready(MutexGuard { mutex: this.mutex.clone(), released: false });
        }
        // Contended: park.
        let tid = node.current_exec();
        let granted = Rc::new(Cell::new(false));
        this.mutex.inner.waiters.borrow_mut().push_back((tid, Rc::clone(&granted)));
        this.registration = Some((tid, granted));
        match node.mode() {
            ExecMode::Thread => node.set_block_kind(BlockKind::Blocked),
            ExecMode::Optimistic => node.set_abort_cause(AbortReason::LockHeld),
            ExecMode::AmInline => unreachable!("current_exec panics in AM mode"),
        }
        Poll::Pending
    }
}

impl<T> Drop for LockFuture<T> {
    fn drop(&mut self) {
        if let Some((tid, granted)) = self.registration.take() {
            if granted.get() {
                // The lock was handed to us but never consumed (abort
                // raced with the release): pass it on.
                self.mutex.unlock();
            } else {
                self.mutex.inner.waiters.borrow_mut().retain(|(t, _)| *t != tid);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condition variables
// ---------------------------------------------------------------------------

struct CondVarInner {
    node: Node,
    waiters: RefCell<VecDeque<WaitEntry>>,
}

/// A condition variable. Use with the owning node's [`Mutex`].
pub struct CondVar {
    inner: Rc<CondVarInner>,
}

impl Clone for CondVar {
    fn clone(&self) -> Self {
        CondVar { inner: Rc::clone(&self.inner) }
    }
}

impl CondVar {
    /// Create a condition variable on `node`.
    pub fn new(node: &Node) -> Self {
        CondVar {
            inner: Rc::new(CondVarInner {
                node: node.clone(),
                waiters: RefCell::new(VecDeque::new()),
            }),
        }
    }

    /// Atomically release `guard`, wait for a signal, and reacquire the
    /// lock. Returns the new guard. The caller must re-check its condition
    /// in a loop, as with any condition variable.
    pub fn wait<T>(&self, guard: MutexGuard<T>) -> CvWait<T> {
        CvWait { cv: self.clone(), mutex: guard.mutex.clone(), phase: CvPhase::Start(guard) }
    }

    /// Wake the longest-waiting thread, if any.
    pub fn signal(&self) {
        let next = self.inner.waiters.borrow_mut().pop_front();
        if let Some((tid, signaled)) = next {
            signaled.set(true);
            self.inner.node.make_runnable(tid, Placement::Front);
        }
        self.inner.node.add_pending(self.inner.node.config().cost.condvar_signal);
    }

    /// Wake all waiting threads, preserving their wait order (the
    /// longest waiter runs first).
    pub fn broadcast(&self) {
        let drained: Vec<WaitEntry> = self.inner.waiters.borrow_mut().drain(..).collect();
        // Front placement reverses insertion order, so walk the waiters
        // back-to-front: the earliest waiter ends up frontmost.
        for (tid, signaled) in drained.into_iter().rev() {
            signaled.set(true);
            self.inner.node.make_runnable(tid, Placement::Front);
        }
        self.inner.node.add_pending(self.inner.node.config().cost.condvar_signal);
    }

    /// Number of threads currently waiting.
    pub fn waiters(&self) -> usize {
        self.inner.waiters.borrow().len()
    }
}

enum CvPhase<T> {
    /// Holding the guard; about to release and park.
    Start(MutexGuard<T>),
    /// Parked, waiting for a signal.
    Waiting(WaitEntry),
    /// Signalled; reacquiring the mutex.
    Relock(LockFuture<T>),
    Done,
}

/// Future returned by [`CondVar::wait`].
pub struct CvWait<T> {
    cv: CondVar,
    mutex: Mutex<T>,
    phase: CvPhase<T>,
}

impl<T> Future for CvWait<T> {
    type Output = MutexGuard<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<MutexGuard<T>> {
        let this = self.get_mut();
        let node = this.cv.inner.node.clone();
        loop {
            match std::mem::replace(&mut this.phase, CvPhase::Done) {
                CvPhase::Start(guard) => {
                    let tid = node.current_exec();
                    let signaled = Rc::new(Cell::new(false));
                    // Register *before* releasing the lock so a signal sent
                    // by the thread the release wakes cannot be missed.
                    this.cv.inner.waiters.borrow_mut().push_back((tid, Rc::clone(&signaled)));
                    node.add_pending(node.config().cost.condvar_wait_setup);
                    drop(guard); // releases the mutex (possible handoff)
                    this.phase = CvPhase::Waiting((tid, signaled));
                    match node.mode() {
                        ExecMode::Thread => node.set_block_kind(BlockKind::Blocked),
                        ExecMode::Optimistic => node.set_abort_cause(AbortReason::ConditionFalse),
                        ExecMode::AmInline => unreachable!("current_exec panics in AM mode"),
                    }
                    return Poll::Pending;
                }
                CvPhase::Waiting(entry) => {
                    if entry.1.get() {
                        this.phase = CvPhase::Relock(this.mutex.lock());
                        continue;
                    }
                    this.phase = CvPhase::Waiting(entry);
                    match node.mode() {
                        ExecMode::Thread => node.set_block_kind(BlockKind::Blocked),
                        ExecMode::Optimistic => node.set_abort_cause(AbortReason::ConditionFalse),
                        ExecMode::AmInline => unreachable!(),
                    }
                    return Poll::Pending;
                }
                CvPhase::Relock(mut lf) => match Pin::new(&mut lf).poll(cx) {
                    Poll::Ready(guard) => return Poll::Ready(guard),
                    Poll::Pending => {
                        this.phase = CvPhase::Relock(lf);
                        return Poll::Pending;
                    }
                },
                CvPhase::Done => panic!("CvWait polled after completion"),
            }
        }
    }
}

impl<T> Drop for CvWait<T> {
    fn drop(&mut self) {
        if let CvPhase::Waiting((tid, signaled)) = &self.phase {
            if signaled.get() {
                // A signal was consumed by a wait that is being abandoned
                // (abort path): forward it so no wakeup is lost.
                self.cv.signal();
            } else {
                self.cv.inner.waiters.borrow_mut().retain(|(t, _)| t != tid);
            }
        }
        // CvPhase::Relock drops the inner LockFuture, whose own Drop
        // deregisters / passes the lock on.
    }
}
