//! Per-node scheduler state.
//!
//! Mirrors the paper's thread package (§3.1): non-preemptive, one running
//! thread per node, run-to-completion except on blocking or voluntary
//! yield, and the *live-stack optimization* — when the scheduler is running
//! on the stack of a terminated thread, a newly created thread can be
//! started directly (7 µs) instead of through a full context switch (52 µs).
//!
//! The scheduler itself is an event-driven object (not a future); threads
//! are futures it polls. The actual step loop lives in
//! `Node::step` (private to [`crate::node`]); this module holds the data structures and
//! the cost accounting they imply.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use oam_model::{CostModel, Dur};

/// Identifier of a thread (or a provisional optimistic-execution slot) on a
/// single node. Not meaningful across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// The raw scheduler-local id (trace correlation).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Where [`crate::node::Node::make_runnable`] inserts a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Front of the run queue (runs next).
    Front,
    /// Back of the run queue.
    Back,
    /// Per the machine's configured [`oam_model::QueuePolicy`] — used for
    /// incoming RPC threads, the knob §4.1 of the paper sweeps.
    Policy,
}

/// A shared boolean used for spin-waits (reply flags, barrier completion).
///
/// A thread that `wait`s on a flag keeps the processor and busy-polls the
/// network, exactly like a CM-5 stub waiting for an RPC reply; the scheduler
/// may run other runnable threads in the meantime (paying switch costs) and
/// resumes the spinner once the flag is set.
#[derive(Clone, Default)]
pub struct Flag(Rc<Cell<bool>>);

impl Flag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag, releasing any spinner.
    pub fn set(&self) {
        self.0.set(true);
    }

    /// Reset the flag to unset (for reusing a flag across waits).
    pub fn clear(&self) {
        self.0.set(false);
    }

    /// Current value.
    pub fn get(&self) -> bool {
        self.0.get()
    }
}

impl std::fmt::Debug for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Flag({})", self.0.get())
    }
}

/// How the currently polled thread suspended, reported through
/// `Node::block_kind` by the synchronization primitives.
pub(crate) enum BlockKind {
    /// Apply the node's accumulated pending charge, then resume this thread
    /// (the `charge` primitive).
    Settle,
    /// Requeue at the back and run someone else.
    Yield,
    /// Parked in a primitive's wait list; the primitive will call
    /// `make_runnable` later.
    Blocked,
    /// Busy-wait for a flag while letting messages (and runnable threads)
    /// through.
    Spin(Flag),
}

/// Lifecycle state of a thread slot.
pub(crate) enum SlotState {
    /// Reserved for an optimistic handler execution that has not (and may
    /// never) become a real thread. `woken` records a wake that arrived
    /// before promotion.
    Provisional { woken: bool },
    /// In the run queue.
    Runnable,
    /// Currently being executed.
    Running,
    /// Parked: in a primitive's wait list, spinning on a flag, or mid-charge.
    Parked,
}

pub(crate) struct ThreadSlot {
    pub fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    pub state: SlotState,
    /// True until the thread's first poll: drives live-stack accounting.
    pub never_ran: bool,
}

/// What is occupying the processor's stack — determines the cost of
/// starting/resuming the next thread (see [`switch_cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StackState {
    /// Fresh node (nothing has run yet) — like a terminated stack.
    Pristine,
    /// The scheduler is on a terminated thread's stack: a fresh thread can
    /// be started directly.
    Terminated,
    /// This thread suspended (blocked/yielded/spinning) and is still "hot":
    /// resuming *it* is free, but running anything else costs a full switch.
    Live(ThreadId),
}

/// Outcome of the cost computation for starting/resuming a thread.
pub(crate) struct SwitchCharge {
    pub cost: Dur,
    pub full_switch: bool,
    /// `Some(true)` = live-stack hit, `Some(false)` = miss, `None` = not a
    /// fresh start (doesn't enter the live-stack statistics).
    pub live_stack: Option<bool>,
}

/// Compute the cost of making `next` the running thread given the current
/// stack occupancy (§3.1 cost structure):
///
/// * resuming the thread that is still hot on the stack: free;
/// * starting a *fresh* thread from a terminated/pristine stack: direct
///   start, 7 µs — the live-stack optimization;
/// * starting a fresh thread over a live suspended thread: save the live
///   state (52 µs) plus the direct start (7 µs) — the paper's ~60 µs;
/// * resuming a suspended thread: a full context switch (52 µs); the paper
///   notes the register restore could not be avoided even from a
///   terminated stack (SPARC register windows).
pub(crate) fn switch_cost(
    cost: &CostModel,
    stack: StackState,
    next: ThreadId,
    never_ran: bool,
) -> SwitchCharge {
    match (stack, never_ran) {
        (StackState::Live(cur), _) if cur == next => {
            SwitchCharge { cost: Dur::ZERO, full_switch: false, live_stack: None }
        }
        (StackState::Terminated | StackState::Pristine, true) => SwitchCharge {
            cost: cost.thread_create_direct,
            full_switch: false,
            live_stack: Some(true),
        },
        (StackState::Live(_), true) => SwitchCharge {
            cost: cost.context_switch + cost.thread_create_direct,
            full_switch: true,
            live_stack: Some(false),
        },
        (_, false) => {
            SwitchCharge { cost: cost.context_switch, full_switch: true, live_stack: None }
        }
    }
}

/// The per-node scheduler bookkeeping.
pub(crate) struct Sched {
    pub slots: HashMap<u64, ThreadSlot>,
    pub run_queue: VecDeque<ThreadId>,
    pub current: Option<ThreadId>,
    /// Spin-waiting threads, in registration order.
    pub spinners: Vec<(ThreadId, Flag)>,
    pub stack_state: StackState,
    pub next_id: u64,
    /// Count of live (not Done, not Provisional) threads.
    pub live_threads: usize,
}

impl Sched {
    pub fn new() -> Self {
        Sched {
            slots: HashMap::new(),
            run_queue: VecDeque::new(),
            current: None,
            spinners: Vec::new(),
            stack_state: StackState::Pristine,
            next_id: 0,
            live_threads: 0,
        }
    }

    pub fn alloc_id(&mut self) -> ThreadId {
        let id = self.next_id;
        self.next_id += 1;
        ThreadId(id)
    }

    /// Remove and return spinners whose flag is set, in registration order.
    /// The node makes each runnable (handling provisional slots correctly).
    pub fn take_ready_spinners(&mut self) -> Vec<ThreadId> {
        if self.spinners.is_empty() {
            return Vec::new();
        }
        let mut ready: Vec<ThreadId> = Vec::new();
        self.spinners.retain(|(tid, flag)| {
            if flag.get() {
                ready.push(*tid);
                false
            } else {
                true
            }
        });
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm5() -> CostModel {
        CostModel::cm5()
    }

    #[test]
    fn resuming_hot_thread_is_free() {
        let c = switch_cost(&cm5(), StackState::Live(ThreadId(3)), ThreadId(3), false);
        assert_eq!(c.cost, Dur::ZERO);
        assert!(!c.full_switch);
        assert_eq!(c.live_stack, None);
    }

    #[test]
    fn fresh_thread_from_terminated_stack_is_7us() {
        let c = switch_cost(&cm5(), StackState::Terminated, ThreadId(1), true);
        assert_eq!(c.cost, Dur::from_micros(7));
        assert_eq!(c.live_stack, Some(true));
    }

    #[test]
    fn fresh_thread_over_live_thread_is_59us() {
        let c = switch_cost(&cm5(), StackState::Live(ThreadId(0)), ThreadId(1), true);
        assert_eq!(c.cost, Dur::from_micros(59));
        assert!(c.full_switch);
        assert_eq!(c.live_stack, Some(false));
    }

    #[test]
    fn resuming_suspended_thread_always_pays_full_switch() {
        for stack in [StackState::Pristine, StackState::Terminated, StackState::Live(ThreadId(9))] {
            let c = switch_cost(&cm5(), stack, ThreadId(1), false);
            assert_eq!(c.cost, Dur::from_micros(52), "stack = {stack:?}");
            assert!(c.full_switch);
        }
    }

    #[test]
    fn ready_spinners_are_taken_in_registration_order() {
        let mut s = Sched::new();
        let (f1, f2, f3) = (Flag::new(), Flag::new(), Flag::new());
        for (i, f) in [&f1, &f2, &f3].iter().enumerate() {
            let tid = ThreadId(i as u64);
            s.slots.insert(
                tid.0,
                ThreadSlot { fut: None, state: SlotState::Parked, never_ran: false },
            );
            s.spinners.push((tid, (*f).clone()));
        }
        f1.set();
        f3.set();
        let ready = s.take_ready_spinners();
        assert_eq!(ready, vec![ThreadId(0), ThreadId(2)]);
        assert_eq!(s.spinners.len(), 1);
        assert_eq!(s.spinners[0].0, ThreadId(1));
        assert!(s.take_ready_spinners().is_empty(), "taking twice yields nothing new");
    }

    #[test]
    fn flag_set_get() {
        let f = Flag::new();
        assert!(!f.get());
        f.set();
        assert!(f.get());
        let g = f.clone();
        assert!(g.get(), "clones share state");
    }
}
