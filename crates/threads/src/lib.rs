//! # oam-threads
//!
//! The paper's optimized non-preemptive user-level thread package (§3.1),
//! reproduced as futures driven by a per-node scheduler:
//!
//! * thread creation, termination, scheduling; run queues with front/back
//!   placement (§4.1);
//! * [`Mutex`] and [`CondVar`] with FIFO handoff;
//! * virtual-compute charging ([`Node::charge`]), voluntary yield, and
//!   busy-wait flags ([`Node::spin_on`]) for RPC replies and barriers;
//! * the **live-stack optimization** cost accounting: starting a fresh
//!   thread from a terminated stack costs 7 µs, everything else pays the
//!   52 µs context switch;
//! * the execution-mode and abort-cause plumbing the OAM engine uses to
//!   run handlers optimistically and detect that they would block.

#![warn(missing_docs)]

pub mod node;
pub mod sched;
pub mod sync;

pub use node::{
    Charge, Checkpoint, Dispatcher, ExecMode, Join, JoinHandle, Node, NodeDiag, PollBatch, SpinOn,
    YieldNow,
};
pub use sched::{Flag, Placement, ThreadId};
pub use sync::{CondVar, CvWait, LockFuture, Mutex, MutexGuard};
