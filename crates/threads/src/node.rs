//! The per-node runtime: scheduler loop, execution modes, and the
//! primitive futures (`charge`, `yield_now`, `checkpoint`, flag spins,
//! `poll()` batches) that thread code suspends on.
//!
//! # Execution modes
//!
//! Code runs in one of three modes ([`ExecMode`]):
//!
//! * **Thread** — a schedulable thread polled by the scheduler. Blocking
//!   primitives park the thread and release the processor.
//! * **Optimistic** — an OAM handler being executed inline by the
//!   `oam-core` engine. Blocking primitives record an [`AbortReason`] and
//!   return `Pending`; the engine then aborts per its strategy.
//! * **AmInline** — a hand-coded Active Message handler. Blocking is a
//!   programming error (the paper: "the program dies"), and the async
//!   primitives panic if reached, mirroring that.
//!
//! # Virtual-time accounting
//!
//! Costs accumulate in a per-node `pending` pot; the scheduler converts the
//! pot into an event-queue wait (a *settle*) before running anything else.
//! `charge()` inside a thread suspends until its cost has settled — compute
//! is non-preemptible and messages wait in the NI meanwhile, which is
//! exactly CM-5 polling semantics. `charge()` inside an inline handler
//! accumulates synchronously and settles when the dispatch completes.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use oam_model::{
    AbortReason, Dur, MachineConfig, NodeId, NodeStats, QueuePolicy, Time, TraceEvent, TraceKind,
    TraceObserver,
};
use oam_sim::Sim;

use crate::sched::{
    switch_cost, BlockKind, Flag, Placement, Sched, SlotState, ThreadId, ThreadSlot,
};

/// What kind of code is currently executing on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// A schedulable thread.
    Thread,
    /// An Optimistic Active Message handler running inline.
    Optimistic,
    /// A hand-coded Active Message handler (must not block).
    AmInline,
}

/// The message-dispatch hook installed by the Active Message layer.
///
/// The scheduler calls this whenever the node has nothing runnable (the
/// paper: "if no such thread exists, it polls the network") and from
/// explicit application `poll()`s.
pub trait Dispatcher {
    /// Poll the NI once and dispatch at most one message. Must charge its
    /// own costs via [`Node::add_pending`]. Returns `true` if a message was
    /// processed.
    fn poll_once(&self, node: &Node) -> bool;
}

/// A point-in-time snapshot of one node's scheduler, used by the machine
/// watchdog to explain why a run stopped making progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDiag {
    /// Which node.
    pub node: NodeId,
    /// The node is idle (nothing runnable, NI empty at last poll).
    pub idle: bool,
    /// Threads alive on the node.
    pub live_threads: usize,
    /// Threads in the run queue.
    pub runnable: usize,
    /// Threads spin-waiting on a flag (RPC replies, barriers).
    pub spinning: usize,
    /// Threads parked in a primitive's wait list (locks, conditions).
    pub parked: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// The step loop is running or scheduled to continue.
    Active,
    /// Waiting for a settle event.
    Settling,
    /// Nothing to do; waiting for an arrival or an external wake.
    Idle,
}

pub(crate) struct NodeInner {
    sim: Sim,
    id: NodeId,
    nprocs: usize,
    cfg: Rc<MachineConfig>,
    stats: Rc<RefCell<NodeStats>>,
    pub(crate) sched: RefCell<Sched>,
    pending: Cell<Dur>,
    mode: Cell<ExecMode>,
    block_kind: RefCell<Option<BlockKind>>,
    abort_cause: Cell<Option<AbortReason>>,
    /// Virtual time consumed so far by the inline handler being executed
    /// (drives "ran too long" detection at `checkpoint()`s).
    handler_elapsed: Cell<Dur>,
    /// Per-method handler-budget override installed by the call engine for
    /// the duration of one optimistic attempt; `None` falls back to the
    /// machine-wide `handler_budget`.
    handler_budget_override: Cell<Option<Dur>>,
    /// The provisional thread id of the optimistic execution in progress.
    active_provisional: Cell<Option<ThreadId>>,
    dispatcher: RefCell<Option<Rc<dyn Dispatcher>>>,
    stepping: Cell<bool>,
    run_state: Cell<RunState>,
    idle_since: Cell<Option<Time>>,
    /// A wake-from-idle kick event is already queued.
    kick_scheduled: Cell<bool>,
    /// Optional trace observer (None = zero-cost).
    observer: RefCell<Option<TraceObserver>>,
    /// Mirror of `observer.is_some()`, checkable without a `RefCell`
    /// borrow: keeps every `emit` call site to a single branch when no
    /// observer is installed (the common, measured-performance case).
    observer_installed: Cell<bool>,
}

/// Handle to a node's runtime. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Node {
    pub(crate) inner: Rc<NodeInner>,
}

impl Node {
    /// Create a node runtime. One per simulated processor.
    pub fn new(
        sim: &Sim,
        id: NodeId,
        nprocs: usize,
        cfg: Rc<MachineConfig>,
        stats: Rc<RefCell<NodeStats>>,
    ) -> Self {
        Node {
            inner: Rc::new(NodeInner {
                sim: sim.clone(),
                id,
                nprocs,
                cfg,
                stats,
                sched: RefCell::new(Sched::new()),
                pending: Cell::new(Dur::ZERO),
                mode: Cell::new(ExecMode::Thread),
                block_kind: RefCell::new(None),
                abort_cause: Cell::new(None),
                handler_elapsed: Cell::new(Dur::ZERO),
                handler_budget_override: Cell::new(None),
                active_provisional: Cell::new(None),
                dispatcher: RefCell::new(None),
                stepping: Cell::new(false),
                run_state: Cell::new(RunState::Idle),
                idle_since: Cell::new(None),
                kick_scheduled: Cell::new(false),
                observer: RefCell::new(None),
                observer_installed: Cell::new(false),
            }),
        }
    }

    // ---- basic accessors ----

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// Number of nodes in the machine.
    pub fn nprocs(&self) -> usize {
        self.inner.nprocs
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.inner.sim.now()
    }

    /// The machine configuration.
    pub fn config(&self) -> &Rc<MachineConfig> {
        &self.inner.cfg
    }

    /// This node's statistics counters.
    pub fn stats(&self) -> &Rc<RefCell<NodeStats>> {
        &self.inner.stats
    }

    /// Install the message dispatcher (done once by the AM layer).
    pub fn set_dispatcher(&self, d: Rc<dyn Dispatcher>) {
        *self.inner.dispatcher.borrow_mut() = Some(d);
    }

    /// Install a trace observer. Events from the scheduler and the layers
    /// above flow to it synchronously; `None` (the default) costs a null
    /// check per event site.
    pub fn set_observer(&self, obs: Option<TraceObserver>) {
        self.inner.observer_installed.set(obs.is_some());
        *self.inner.observer.borrow_mut() = obs;
    }

    /// True when a trace observer is installed. Call sites that would do
    /// non-trivial work just to *build* a [`TraceKind`] can skip it.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.inner.observer_installed.get()
    }

    /// Emit a trace event (used by this crate and the AM/OAM layers).
    #[inline]
    pub fn emit(&self, kind: TraceKind) {
        if !self.inner.observer_installed.get() {
            return;
        }
        self.emit_slow(kind);
    }

    /// Out-of-line observer dispatch, so the untraced fast path in
    /// [`Node::emit`] stays small enough to inline everywhere.
    #[cold]
    fn emit_slow(&self, kind: TraceKind) {
        let obs = self.inner.observer.borrow().clone();
        if let Some(obs) = obs {
            obs(&TraceEvent { node: self.inner.id, t: self.now(), kind });
        }
    }

    // ---- cost accounting ----

    /// Add `d` to the node's pending virtual-time charge. The scheduler
    /// settles the pot before executing anything else.
    pub fn add_pending(&self, d: Dur) {
        if !d.is_zero() {
            self.inner.pending.set(self.inner.pending.get() + d);
            if matches!(self.inner.mode.get(), ExecMode::Optimistic | ExecMode::AmInline) {
                self.inner.handler_elapsed.set(self.inner.handler_elapsed.get() + d);
            }
        }
    }

    /// Pending charge not yet settled (for tests and diagnostics).
    pub fn pending_charge(&self) -> Dur {
        self.inner.pending.get()
    }

    // ---- execution-mode plumbing (used by the AM/OAM layers) ----

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.inner.mode.get()
    }

    /// Switch execution mode, returning the previous one. The AM/OAM layers
    /// bracket inline handler execution with this.
    pub fn set_mode(&self, m: ExecMode) -> ExecMode {
        self.inner.mode.replace(m)
    }

    /// Record why the current optimistic execution cannot continue.
    pub fn set_abort_cause(&self, r: AbortReason) {
        self.inner.abort_cause.set(Some(r));
    }

    /// Take the recorded abort cause, if any.
    pub fn take_abort_cause(&self) -> Option<AbortReason> {
        self.inner.abort_cause.take()
    }

    /// Reset the inline-handler elapsed-time counter (OAM engine, at
    /// handler entry).
    pub fn reset_handler_elapsed(&self) {
        self.inner.handler_elapsed.set(Dur::ZERO);
    }

    /// Virtual time consumed by the inline handler so far.
    pub fn handler_elapsed(&self) -> Dur {
        self.inner.handler_elapsed.get()
    }

    /// Install (or clear) a per-method handler-budget override, returning
    /// the previous one so nested dispatches can restore it.
    pub fn set_handler_budget_override(&self, budget: Option<Dur>) -> Option<Dur> {
        self.inner.handler_budget_override.replace(budget)
    }

    /// The run-length budget the current optimistic attempt is checked
    /// against: the per-method override if one is installed, else the
    /// machine-wide `handler_budget`.
    pub fn effective_handler_budget(&self) -> Dur {
        self.inner.handler_budget_override.get().unwrap_or(self.inner.cfg.handler_budget)
    }

    // ---- thread management ----

    /// Spawn an application thread (queued at the back). Returns a handle
    /// the spawner can `join`.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.spawn_placed(fut, Placement::Back).0
    }

    /// Spawn a thread for an incoming RPC, placed per the machine's
    /// configured queue policy (§4.1 of the paper).
    pub fn spawn_incoming<T: 'static>(
        &self,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_placed(fut, Placement::Policy).0
    }

    /// Spawn a thread for an incoming RPC at an explicit queue position —
    /// priority dispatch overrides the configured policy — and return its
    /// thread id so the call engine can wake it for cancellation.
    pub fn spawn_incoming_at(
        &self,
        fut: impl Future<Output = ()> + 'static,
        place: Placement,
    ) -> ThreadId {
        self.spawn_placed(fut, place).1
    }

    fn spawn_placed<T: 'static>(
        &self,
        fut: impl Future<Output = T> + 'static,
        place: Placement,
    ) -> (JoinHandle<T>, ThreadId) {
        let handle = JoinHandle::new(self.clone());
        let inner = handle.shared();
        let node = self.clone();
        let wrapped = async move {
            let out = fut.await;
            inner.finish(&node, out);
        };
        let tid = {
            let mut sched = self.inner.sched.borrow_mut();
            let tid = sched.alloc_id();
            sched.slots.insert(
                tid.0,
                ThreadSlot {
                    fut: Some(Box::pin(wrapped)),
                    state: SlotState::Runnable,
                    never_ran: true,
                },
            );
            sched.live_threads += 1;
            tid
        };
        self.inner.stats.borrow_mut().threads_created += 1;
        self.emit(TraceKind::ThreadSpawned { tid: tid.raw() });
        self.add_pending(self.inner.cfg.cost.enqueue_runnable);
        self.enqueue(tid, place);
        self.wake_if_idle();
        (handle, tid)
    }

    /// Reserve a provisional thread slot for an optimistic execution. If
    /// the handler completes without blocking the slot is released for
    /// free; if it must abort, the slot becomes a real thread via
    /// [`Node::promote`].
    pub fn reserve_provisional(&self) -> ThreadId {
        let mut sched = self.inner.sched.borrow_mut();
        let tid = sched.alloc_id();
        sched.slots.insert(
            tid.0,
            ThreadSlot {
                fut: None,
                state: SlotState::Provisional { woken: false },
                never_ran: true,
            },
        );
        tid
    }

    /// Release a provisional slot after a successful optimistic execution.
    pub fn release_provisional(&self, tid: ThreadId) {
        let mut sched = self.inner.sched.borrow_mut();
        let slot = sched.slots.remove(&tid.0).expect("release of unknown provisional slot");
        debug_assert!(
            matches!(slot.state, SlotState::Provisional { .. }),
            "release_provisional on a promoted slot"
        );
    }

    /// Promote a provisional slot into a real thread running `fut` — the
    /// lazy thread creation at the heart of OAM. If a wake already arrived
    /// (e.g. the contended lock was released while the abort was being
    /// processed) the thread is immediately runnable; otherwise it stays
    /// parked in whatever wait list the partially-run handler joined.
    pub fn promote(&self, tid: ThreadId, fut: impl Future<Output = ()> + 'static) {
        let woken = {
            let mut sched = self.inner.sched.borrow_mut();
            let slot = sched.slots.get_mut(&tid.0).expect("promote of unknown slot");
            let woken = match slot.state {
                SlotState::Provisional { woken } => woken,
                _ => panic!("promote of non-provisional slot"),
            };
            slot.fut = Some(Box::pin(fut));
            slot.state = if woken { SlotState::Runnable } else { SlotState::Parked };
            slot.never_ran = true;
            sched.live_threads += 1;
            woken
        };
        self.inner.stats.borrow_mut().threads_created += 1;
        self.emit(TraceKind::ThreadSpawned { tid: tid.raw() });
        if woken {
            self.enqueue(tid, Placement::Policy);
            self.wake_if_idle();
        }
    }

    /// The identity of the currently executing entity: the running thread,
    /// or the provisional slot of the optimistic handler being executed.
    /// Wait lists park this id.
    pub fn current_exec(&self) -> ThreadId {
        match self.inner.mode.get() {
            ExecMode::Thread => {
                self.inner.sched.borrow().current.expect("current_exec outside a running thread")
            }
            ExecMode::Optimistic => self
                .inner
                .active_provisional
                .get()
                .expect("optimistic mode without a provisional slot"),
            ExecMode::AmInline => {
                panic!(
                    "a hand-coded Active Message handler attempted a blocking operation — \
                        the paper's semantics: the program dies"
                )
            }
        }
    }

    /// Set the provisional slot the OAM engine is currently executing,
    /// returning the previous one (dispatch can nest).
    pub fn set_active_provisional_replace(&self, tid: Option<ThreadId>) -> Option<ThreadId> {
        self.inner.active_provisional.replace(tid)
    }

    /// Make a parked (or provisional) thread runnable. Idempotent for
    /// already-runnable threads.
    pub fn make_runnable(&self, tid: ThreadId, place: Placement) {
        let enqueue = {
            let mut sched = self.inner.sched.borrow_mut();
            match sched.slots.get_mut(&tid.0) {
                None => false, // completed meanwhile (e.g. spurious wake)
                Some(slot) => match slot.state {
                    SlotState::Provisional { .. } => {
                        slot.state = SlotState::Provisional { woken: true };
                        false
                    }
                    SlotState::Parked => {
                        slot.state = SlotState::Runnable;
                        true
                    }
                    SlotState::Runnable | SlotState::Running => false,
                },
            }
        };
        if enqueue {
            self.enqueue(tid, place);
            self.wake_if_idle();
        }
    }

    /// Remove a spin registration (used when an optimistic spin future is
    /// dropped by the rerun/NACK abort paths).
    pub(crate) fn remove_spinner(&self, tid: ThreadId) {
        self.inner.sched.borrow_mut().spinners.retain(|(t, _)| *t != tid);
    }

    fn enqueue(&self, tid: ThreadId, place: Placement) {
        let mut sched = self.inner.sched.borrow_mut();
        let front = match place {
            Placement::Front => true,
            Placement::Back => false,
            Placement::Policy => self.inner.cfg.queue_policy == QueuePolicy::Front,
        };
        if front {
            sched.run_queue.push_front(tid);
        } else {
            sched.run_queue.push_back(tid);
        }
    }

    /// Number of threads that are alive (running, runnable, or parked).
    pub fn live_threads(&self) -> usize {
        self.inner.sched.borrow().live_threads
    }

    /// Snapshot the scheduler state for hang diagnosis. Cheap; callable at
    /// any quiescent point (e.g. after a run stops making progress).
    pub fn diagnostics(&self) -> NodeDiag {
        let sched = self.inner.sched.borrow();
        let spinning = sched.spinners.len();
        let parked = sched
            .slots
            .values()
            .filter(|s| matches!(s.state, SlotState::Parked))
            .count()
            .saturating_sub(spinning);
        NodeDiag {
            node: self.id(),
            idle: self.inner.run_state.get() == RunState::Idle,
            live_threads: sched.live_threads,
            runnable: sched.run_queue.len(),
            spinning,
            parked,
        }
    }

    // ---- primitive futures ----

    /// Consume `d` of virtual compute time. In a thread, the processor is
    /// held for the duration (non-preemptive); in an inline handler the
    /// cost accumulates and settles when the dispatch completes.
    pub fn charge(&self, d: Dur) -> Charge {
        Charge { node: self.clone(), d: Some(d) }
    }

    /// Voluntarily yield the processor (thread mode); no-op inline.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { node: self.clone(), yielded: false }
    }

    /// A stub-compiler-inserted progress check: inside an optimistic
    /// execution, aborts with [`AbortReason::RanTooLong`] once the handler
    /// has consumed more than the configured budget. No-op in a thread.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint { node: self.clone(), tripped: false }
    }

    /// Busy-wait until `flag` is set, dispatching messages (and letting
    /// runnable threads run) in the meantime. This is how RPC stubs wait
    /// for replies and how split-phase barriers complete.
    pub fn spin_on(&self, flag: Flag) -> SpinOn {
        SpinOn { node: self.clone(), flag, registered_optimistic: None }
    }

    /// The application-level `poll()`: drain deliverable messages, run any
    /// threads they produce, then resume the caller. In the paper's apps
    /// this is the "carefully tuned polling" inserted in compute loops.
    pub fn poll_batch(&self) -> PollBatch {
        PollBatch { node: self.clone(), yielded: false }
    }

    // ---- the scheduler ----

    /// Fold the still-open trailing idle window into the statistics, as of
    /// `at` (typically the end of the run). While a run is in progress,
    /// idle time accrues only when a kick ends an idle period — which
    /// leaves the final window (last wake to end of run) uncounted, and
    /// makes the total sensitive to exactly *when* the last no-op wake
    /// lands. Folding the tail at harvest makes `idle_time` equal to the
    /// node's total non-active virtual time, independent of execution
    /// strategy. Idempotent; emits no trace (the node does not wake).
    pub fn finalize_idle(&self, at: Time) {
        if self.inner.run_state.get() != RunState::Idle {
            return;
        }
        if let Some(since) = self.inner.idle_since.get() {
            if at > since {
                self.inner.stats.borrow_mut().idle_time += at.since(since);
                self.inner.idle_since.set(Some(at));
            }
        }
    }

    /// Run the scheduler loop until the node blocks on virtual time, goes
    /// idle, or finishes. Invoked by events (arrivals, settles, external
    /// wakes); re-entrant calls are ignored.
    pub fn kick(&self) {
        if self.inner.stepping.get() {
            return;
        }
        if self.inner.run_state.get() == RunState::Settling {
            // A settle continuation is already queued; it will resume the
            // loop at the correct virtual time. Acting now would let work
            // jump ahead of its own cost.
            return;
        }
        if self.inner.run_state.get() == RunState::Idle {
            if let Some(since) = self.inner.idle_since.take() {
                self.inner.stats.borrow_mut().idle_time += self.now().since(since);
            }
            self.emit(TraceKind::IdleEnd);
        }
        self.inner.run_state.set(RunState::Active);
        // Attribute everything scheduled from node code to this node while
        // the step loop runs (keyed/sharded mode; no-op otherwise).
        let prev_owner = self.inner.sim.swap_owner(self.inner.id.index() as u32);
        self.step();
        self.inner.sim.swap_owner(prev_owner);
    }

    fn wake_if_idle(&self) {
        if !self.inner.stepping.get()
            && self.inner.run_state.get() == RunState::Idle
            && !self.inner.kick_scheduled.replace(true)
        {
            let node = self.clone();
            self.inner.sim.schedule_after_for(Dur::ZERO, self.inner.id.index() as u32, move |_| {
                node.inner.kick_scheduled.set(false);
                node.kick();
            });
        }
    }

    fn step(&self) {
        debug_assert!(!self.inner.stepping.get());
        self.inner.stepping.set(true);
        loop {
            // 0. Settle accumulated charges before doing anything else.
            let pending = self.inner.pending.replace(Dur::ZERO);
            if !pending.is_zero() {
                self.inner.run_state.set(RunState::Settling);
                let node = self.clone();
                self.inner.sim.schedule_after_for(
                    pending,
                    self.inner.id.index() as u32,
                    move |_| {
                        node.inner.run_state.set(RunState::Active);
                        node.kick();
                    },
                );
                break;
            }

            // 1. Run the current thread, if any.
            let current = self.inner.sched.borrow().current;
            if let Some(cur) = current {
                if self.run_current(cur) {
                    continue;
                }
                // Thread is mid-charge; the settle event will resume us.
                break;
            }

            // 2. Spinners whose flag was set become runnable (front).
            let ready = {
                let mut sched = self.inner.sched.borrow_mut();
                sched.take_ready_spinners()
            };
            if !ready.is_empty() {
                // Reverse so the earliest-registered spinner ends up at the
                // very front of the run queue.
                for tid in ready.into_iter().rev() {
                    self.make_runnable(tid, Placement::Front);
                }
                continue;
            }

            // 3. Start or resume the next runnable thread.
            let next = self.inner.sched.borrow_mut().run_queue.pop_front();
            if let Some(next) = next {
                self.begin_running(next);
                continue;
            }

            // 4. Nothing runnable: poll the network.
            let dispatcher = self.inner.dispatcher.borrow().clone();
            if let Some(d) = dispatcher {
                if d.poll_once(self) {
                    continue;
                }
            }

            // 5. Idle. Any remaining sub-settle pending (e.g. the empty
            //    poll's cost) carries over and delays the next activity.
            self.inner.run_state.set(RunState::Idle);
            self.inner.idle_since.set(Some(self.now()));
            self.emit(TraceKind::IdleStart);
            break;
        }
        self.inner.stepping.set(false);
    }

    /// Poll the current thread once. Returns `true` if the loop should
    /// continue, `false` if the node must wait for a settle event.
    fn run_current(&self, cur: ThreadId) -> bool {
        let mut fut = {
            let mut sched = self.inner.sched.borrow_mut();
            let slot = sched.slots.get_mut(&cur.0).expect("current thread has no slot");
            slot.state = SlotState::Running;
            slot.fut.take().expect("current thread has no future")
        };
        let prev_mode = self.inner.mode.replace(ExecMode::Thread);
        self.inner.block_kind.borrow_mut().take();
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let poll = fut.as_mut().poll(&mut cx);
        self.inner.mode.set(prev_mode);
        match poll {
            Poll::Ready(()) => {
                let mut sched = self.inner.sched.borrow_mut();
                sched.slots.remove(&cur.0);
                sched.current = None;
                sched.stack_state = crate::sched::StackState::Terminated;
                sched.live_threads -= 1;
                drop(sched);
                self.inner.stats.borrow_mut().threads_completed += 1;
                self.emit(TraceKind::ThreadFinished { tid: cur.raw() });
                self.add_pending(self.inner.cfg.cost.thread_exit);
                true
            }
            Poll::Pending => {
                let kind = self.inner.block_kind.borrow_mut().take().expect(
                    "thread returned Pending without using a node primitive — \
                             foreign futures cannot run on the node scheduler",
                );
                let mut sched = self.inner.sched.borrow_mut();
                let slot = sched.slots.get_mut(&cur.0).expect("slot vanished");
                slot.fut = Some(fut);
                match kind {
                    BlockKind::Settle => {
                        // Keep the thread current; step() settles then
                        // re-polls it.
                        slot.state = SlotState::Running;
                        drop(sched);
                        // Continue the loop: the settle at step 0 fires.
                        true
                    }
                    BlockKind::Yield => {
                        slot.state = SlotState::Runnable;
                        sched.run_queue.push_back(cur);
                        sched.current = None;
                        sched.stack_state = crate::sched::StackState::Live(cur);
                        drop(sched);
                        self.inner.stats.borrow_mut().yields += 1;
                        self.add_pending(self.inner.cfg.cost.yield_cost);
                        true
                    }
                    BlockKind::Blocked => {
                        slot.state = SlotState::Parked;
                        sched.current = None;
                        sched.stack_state = crate::sched::StackState::Live(cur);
                        true
                    }
                    BlockKind::Spin(flag) => {
                        slot.state = SlotState::Parked;
                        sched.spinners.push((cur, flag));
                        sched.current = None;
                        sched.stack_state = crate::sched::StackState::Live(cur);
                        true
                    }
                }
            }
        }
    }

    /// Make `next` the current thread, charging switch costs per the
    /// live-stack rules.
    fn begin_running(&self, next: ThreadId) {
        let charge = {
            let mut sched = self.inner.sched.borrow_mut();
            let stack = sched.stack_state;
            let slot = sched.slots.get_mut(&next.0).expect("runnable thread has no slot");
            let charge = switch_cost(&self.inner.cfg.cost, stack, next, slot.never_ran);
            slot.never_ran = false;
            slot.state = SlotState::Running;
            sched.current = Some(next);
            sched.stack_state = crate::sched::StackState::Live(next);
            charge
        };
        {
            let mut st = self.inner.stats.borrow_mut();
            if charge.full_switch {
                st.context_switches += 1;
            }
            match charge.live_stack {
                Some(true) => st.live_stack_hits += 1,
                Some(false) => st.live_stack_misses += 1,
                None => {}
            }
        }
        self.emit(TraceKind::ThreadStarted {
            tid: next.raw(),
            cost: charge.cost,
            live_stack: charge.live_stack,
        });
        self.add_pending(charge.cost);
    }

    /// Suspend the current thread spinning on `flag` (for futures in other
    /// crates — e.g. a send blocked on a full NI — that need spin-wait
    /// semantics: the node keeps polling and resumes when the flag sets).
    /// Must be followed by returning `Poll::Pending` from the caller.
    pub fn set_block_spin(&self, flag: Flag) {
        self.set_block_kind(BlockKind::Spin(flag));
    }

    // ---- internals used by primitive futures ----

    pub(crate) fn set_block_kind(&self, k: BlockKind) {
        *self.inner.block_kind.borrow_mut() = Some(k);
    }
}

// ---------------------------------------------------------------------------
// Primitive futures
// ---------------------------------------------------------------------------

/// Future returned by [`Node::charge`].
pub struct Charge {
    node: Node,
    d: Option<Dur>,
}

impl Future for Charge {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.d.take() {
            None => Poll::Ready(()), // second poll: the settle completed
            Some(d) => {
                this.node.add_pending(d);
                match this.node.mode() {
                    ExecMode::Thread => {
                        this.node.set_block_kind(BlockKind::Settle);
                        Poll::Pending
                    }
                    // Inline handlers accumulate; the dispatch settles.
                    ExecMode::Optimistic | ExecMode::AmInline => Poll::Ready(()),
                }
            }
        }
    }
}

/// Future returned by [`Node::yield_now`].
pub struct YieldNow {
    node: Node,
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.yielded || this.node.mode() != ExecMode::Thread {
            return Poll::Ready(());
        }
        this.yielded = true;
        this.node.set_block_kind(BlockKind::Yield);
        Poll::Pending
    }
}

/// Future returned by [`Node::checkpoint`].
pub struct Checkpoint {
    node: Node,
    tripped: bool,
}

impl Future for Checkpoint {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.tripped {
            // Re-polled after promotion or a yield: continue.
            return Poll::Ready(());
        }
        match this.node.mode() {
            ExecMode::Optimistic => {
                if this.node.handler_elapsed() > this.node.effective_handler_budget() {
                    this.tripped = true;
                    this.node.set_abort_cause(AbortReason::RanTooLong);
                    Poll::Pending
                } else {
                    Poll::Ready(())
                }
            }
            ExecMode::Thread => {
                // In a thread (including a promoted long-running handler),
                // a checkpoint is a poll point: dispatch deliverable
                // messages and let other runnable threads in — this is
                // what makes promotion restore the node's responsiveness.
                let dispatcher = this.node.inner.dispatcher.borrow().clone();
                if let Some(d) = dispatcher {
                    while d.poll_once(&this.node) {}
                }
                if this.node.inner.sched.borrow().run_queue.is_empty() {
                    return Poll::Ready(());
                }
                this.tripped = true;
                this.node.set_block_kind(BlockKind::Yield);
                Poll::Pending
            }
            ExecMode::AmInline => Poll::Ready(()),
        }
    }
}

/// Future returned by [`Node::spin_on`].
pub struct SpinOn {
    node: Node,
    flag: Flag,
    /// Set when an optimistic execution registered its provisional slot in
    /// the spinner list (so promotion can be resumed by the flag); cleared
    /// on completion, deregistered on drop.
    registered_optimistic: Option<ThreadId>,
}

impl Future for SpinOn {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.flag.get() {
            this.registered_optimistic = None;
            return Poll::Ready(());
        }
        match this.node.mode() {
            ExecMode::Thread => {
                this.node.set_block_kind(BlockKind::Spin(this.flag.clone()));
                Poll::Pending
            }
            ExecMode::Optimistic => {
                // A handler that waits must abort; register the provisional
                // slot so a promotion is woken when the flag is set.
                let tid = this.node.current_exec();
                if this.registered_optimistic != Some(tid) {
                    this.node.inner.sched.borrow_mut().spinners.push((tid, this.flag.clone()));
                    this.registered_optimistic = Some(tid);
                }
                this.node.set_abort_cause(AbortReason::ConditionFalse);
                Poll::Pending
            }
            ExecMode::AmInline => {
                panic!("AM handler attempted to wait on a flag — the program dies")
            }
        }
    }
}

impl Drop for SpinOn {
    fn drop(&mut self) {
        if let Some(tid) = self.registered_optimistic.take() {
            self.node.remove_spinner(tid);
        }
    }
}

/// Future returned by [`Node::poll_batch`].
pub struct PollBatch {
    node: Node,
    yielded: bool,
}

impl Future for PollBatch {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.yielded || this.node.mode() != ExecMode::Thread {
            return Poll::Ready(());
        }
        // Dispatch every deliverable message right now — the CM-5 poll is
        // an instruction, not a scheduling point...
        let dispatcher = this.node.inner.dispatcher.borrow().clone();
        if let Some(d) = dispatcher {
            while d.poll_once(&this.node) {}
        }
        // ...then give incoming threads (placed per the queue policy —
        // "run remote procedure calls first") a scheduling point, but only
        // if there is actually something to run.
        if this.node.inner.sched.borrow().run_queue.is_empty() {
            return Poll::Ready(());
        }
        this.yielded = true;
        this.node.set_block_kind(BlockKind::Yield);
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Join handles
// ---------------------------------------------------------------------------

pub(crate) struct JoinShared<T> {
    result: RefCell<Option<T>>,
    done: Flag,
    waiters: RefCell<Vec<ThreadId>>,
}

impl<T> JoinShared<T> {
    pub(crate) fn finish(&self, node: &Node, value: T) {
        *self.result.borrow_mut() = Some(value);
        self.done.set();
        for tid in self.waiters.borrow_mut().drain(..) {
            node.make_runnable(tid, Placement::Front);
        }
    }
}

/// Handle to a spawned thread; `join` to wait for its result.
pub struct JoinHandle<T> {
    node: Node,
    shared: Rc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    fn new(node: Node) -> Self {
        JoinHandle {
            node,
            shared: Rc::new(JoinShared {
                result: RefCell::new(None),
                done: Flag::new(),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    pub(crate) fn shared(&self) -> Rc<JoinShared<T>> {
        Rc::clone(&self.shared)
    }

    /// Has the thread completed?
    pub fn is_done(&self) -> bool {
        self.shared.done.get()
    }

    /// Wait for the thread to finish and take its result.
    ///
    /// Blocks the calling thread; inside an optimistic execution this is a
    /// wait and therefore aborts the handler.
    pub fn join(self) -> Join<T> {
        Join { node: self.node.clone(), shared: self.shared, registered: None }
    }
}

/// Future returned by [`JoinHandle::join`].
pub struct Join<T> {
    node: Node,
    shared: Rc<JoinShared<T>>,
    registered: Option<ThreadId>,
}

impl<T> Future for Join<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        if this.shared.done.get() {
            this.registered = None;
            return Poll::Ready(
                this.shared.result.borrow_mut().take().expect("join result taken twice"),
            );
        }
        let tid = this.node.current_exec();
        if this.registered != Some(tid) {
            this.shared.waiters.borrow_mut().push(tid);
            this.registered = Some(tid);
        }
        match this.node.mode() {
            ExecMode::Thread => this.node.set_block_kind(BlockKind::Blocked),
            ExecMode::Optimistic => this.node.set_abort_cause(AbortReason::ConditionFalse),
            ExecMode::AmInline => unreachable!("current_exec already panicked"),
        }
        Poll::Pending
    }
}

impl<T> Drop for Join<T> {
    fn drop(&mut self) {
        // Rerun/NACK abort paths drop pending waits; deregister so the
        // completing thread doesn't wake a recycled slot.
        if let Some(tid) = self.registered.take() {
            self.shared.waiters.borrow_mut().retain(|t| *t != tid);
        }
    }
}
