//! Stress tests of the synchronization primitives: multi-producer/
//! multi-consumer queues, lock fairness, and join chains.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use oam_model::{Dur, MachineConfig, NodeId, NodeStats};
use oam_sim::Sim;
use oam_threads::{CondVar, Mutex, Node};

fn test_node() -> (Sim, Node) {
    let sim = Sim::new(31);
    let stats = Rc::new(RefCell::new(NodeStats::new()));
    let node = Node::new(&sim, NodeId(0), 1, Rc::new(MachineConfig::cm5(1)), stats);
    (sim, node)
}

#[test]
fn bounded_buffer_with_multiple_producers_and_consumers() {
    const CAP: usize = 3;
    const PRODUCERS: usize = 4;
    const ITEMS_EACH: usize = 25;
    const CONSUMERS: usize = 3;

    let (sim, node) = test_node();
    let buf = Mutex::new(&node, VecDeque::<u64>::new());
    let not_full = CondVar::new(&node);
    let not_empty = CondVar::new(&node);
    let consumed: Rc<RefCell<Vec<u64>>> = Rc::default();

    for p in 0..PRODUCERS {
        let (m, nf, ne, n) = (buf.clone(), not_full.clone(), not_empty.clone(), node.clone());
        node.spawn(async move {
            for i in 0..ITEMS_EACH {
                let mut g = m.lock().await;
                while g.with(|q| q.len() >= CAP) {
                    g = nf.wait(g).await;
                }
                g.with_mut(|q| q.push_back((p * ITEMS_EACH + i) as u64));
                ne.signal();
                drop(g);
                n.charge(Dur::from_micros((i % 5) as u64)).await;
            }
        });
    }
    let total = PRODUCERS * ITEMS_EACH;
    let per_consumer = total / CONSUMERS; // 100 / 3 -> 33, remainder to last
    for c in 0..CONSUMERS {
        let take =
            if c == CONSUMERS - 1 { total - per_consumer * (CONSUMERS - 1) } else { per_consumer };
        let (m, nf, ne, n, out) =
            (buf.clone(), not_full.clone(), not_empty.clone(), node.clone(), consumed.clone());
        node.spawn(async move {
            for _ in 0..take {
                let mut g = m.lock().await;
                loop {
                    if let Some(v) = g.with_mut(|q| q.pop_front()) {
                        out.borrow_mut().push(v);
                        break;
                    }
                    g = ne.wait(g).await;
                }
                nf.signal();
                drop(g);
                n.charge(Dur::from_micros(2)).await;
            }
        });
    }
    sim.run();
    let mut got = consumed.borrow().clone();
    assert_eq!(got.len(), total, "every item consumed exactly once");
    got.sort_unstable();
    got.dedup();
    assert_eq!(got.len(), total, "no duplicates");
    assert_eq!(node.live_threads(), 0, "all threads exited");
}

#[test]
fn lock_handoff_is_fifo_across_many_waiters() {
    let (sim, node) = test_node();
    let m = Mutex::new(&node, ());
    let order: Rc<RefCell<Vec<usize>>> = Rc::default();
    // Thread 0 takes the lock and spins long enough for all others to
    // queue in spawn order.
    let (m0, n0) = (m.clone(), node.clone());
    node.spawn(async move {
        let _g = m0.lock().await;
        n0.charge(Dur::from_micros(500)).await;
    });
    for i in 1..=8 {
        let (mi, oi, ni) = (m.clone(), order.clone(), node.clone());
        node.spawn(async move {
            // Stagger arrival so registration order is deterministic.
            ni.charge(Dur::from_micros(i as u64)).await;
            let _g = mi.lock().await;
            oi.borrow_mut().push(i);
        });
    }
    sim.run();
    assert_eq!(*order.borrow(), (1..=8).collect::<Vec<_>>(), "FIFO handoff");
}

#[test]
fn join_chain_propagates_results() {
    let (sim, node) = test_node();
    let result: Rc<RefCell<u64>> = Rc::default();
    let r = result.clone();
    let n = node.clone();
    node.spawn(async move {
        // Each thread spawns the next and adds its own contribution.
        fn chain(node: Node, depth: u64) -> oam_threads::JoinHandle<u64> {
            let inner = node.clone();
            node.spawn(async move {
                if depth == 0 {
                    1
                } else {
                    let child = chain(inner.clone(), depth - 1);
                    child.join().await + depth
                }
            })
        }
        *r.borrow_mut() = chain(n.clone(), 10).join().await;
    });
    sim.run();
    assert_eq!(*result.borrow(), 1 + (1..=10).sum::<u64>());
}

#[test]
fn broadcast_with_predicate_wakes_only_satisfied_waiters_permanently() {
    let (sim, node) = test_node();
    let m = Mutex::new(&node, 0u32);
    let cv = CondVar::new(&node);
    let released: Rc<RefCell<Vec<u32>>> = Rc::default();
    for threshold in [2u32, 4, 6] {
        let (mi, cvi, out) = (m.clone(), cv.clone(), released.clone());
        node.spawn(async move {
            let mut g = mi.lock().await;
            while g.get() < threshold {
                g = cvi.wait(g).await;
            }
            out.borrow_mut().push(threshold);
        });
    }
    let (ms, cvs, ns) = (m.clone(), cv.clone(), node.clone());
    node.spawn(async move {
        for _ in 0..6 {
            ns.charge(Dur::from_micros(10)).await;
            let g = ms.lock().await;
            g.with_mut(|v| *v += 1);
            cvs.broadcast();
        }
    });
    sim.run();
    assert_eq!(*released.borrow(), vec![2, 4, 6], "waiters release in threshold order");
}

#[test]
fn many_short_threads_have_bounded_scheduler_state() {
    let (sim, node) = test_node();
    let done: Rc<RefCell<u32>> = Rc::default();
    for _ in 0..500 {
        let (n, d) = (node.clone(), done.clone());
        node.spawn(async move {
            n.charge(Dur::from_micros(1)).await;
            *d.borrow_mut() += 1;
        });
    }
    sim.run();
    assert_eq!(*done.borrow(), 500);
    assert_eq!(node.live_threads(), 0);
}
