//! Behavioral tests of the thread package: scheduling order, live-stack
//! cost accounting, blocking primitives, and provisional-slot promotion.

use std::cell::RefCell;
use std::rc::Rc;

use oam_model::{Dur, MachineConfig, NodeId, NodeStats, QueuePolicy, Time};
use oam_sim::Sim;
use oam_threads::{CondVar, ExecMode, Flag, Mutex, Node, Placement};

fn test_node_with(cfg: MachineConfig) -> (Sim, Node, Rc<RefCell<NodeStats>>) {
    let sim = Sim::new(11);
    let stats = Rc::new(RefCell::new(NodeStats::new()));
    let node = Node::new(&sim, NodeId(0), cfg.nodes, Rc::new(cfg), Rc::clone(&stats));
    (sim, node, stats)
}

fn test_node() -> (Sim, Node, Rc<RefCell<NodeStats>>) {
    test_node_with(MachineConfig::cm5(1))
}

#[test]
fn single_thread_costs_enqueue_create_and_exit() {
    let (sim, node, stats) = test_node();
    let n = node.clone();
    node.spawn(async move {
        assert_eq!(n.mode(), ExecMode::Thread);
    });
    let end = sim.run();
    // enqueue 0.3 µs + direct start 7 µs + exit 0.8 µs.
    assert_eq!(end, Time::from_nanos(8_100));
    let st = stats.borrow();
    assert_eq!(st.threads_created, 1);
    assert_eq!(st.threads_completed, 1);
    assert_eq!(st.live_stack_hits, 1);
    assert_eq!(st.live_stack_misses, 0);
    assert_eq!(st.context_switches, 0);
}

#[test]
fn charge_holds_the_processor_for_its_duration() {
    let (sim, node, _) = test_node();
    let n = node.clone();
    let observed = Rc::new(RefCell::new(Vec::new()));
    let obs = Rc::clone(&observed);
    node.spawn(async move {
        obs.borrow_mut().push(n.now());
        n.charge(Dur::from_micros(100)).await;
        obs.borrow_mut().push(n.now());
    });
    let end = sim.run();
    let obs = observed.borrow();
    assert_eq!(obs[1].since(obs[0]), Dur::from_micros(100));
    assert_eq!(end, Time::from_nanos(300 + 7_000 + 100_000 + 800));
}

#[test]
fn second_fresh_thread_over_live_thread_pays_59us() {
    let (sim, node, stats) = test_node();
    let log: Rc<RefCell<Vec<(&'static str, Time)>>> = Rc::default();
    let (l1, l2) = (log.clone(), log.clone());
    let (na, nb) = (node.clone(), node.clone());
    node.spawn(async move {
        l1.borrow_mut().push(("a-start", na.now()));
        na.yield_now().await; // B gets the processor
        l1.borrow_mut().push(("a-resume", na.now()));
    });
    node.spawn(async move {
        l2.borrow_mut().push(("b-start", nb.now()));
    });
    sim.run();
    let log = log.borrow();
    assert_eq!(log[0].0, "a-start");
    assert_eq!(log[1].0, "b-start");
    assert_eq!(log[2].0, "a-resume");
    // B is fresh but A is live on the stack: 52 + 7 µs, plus A's 0.4 µs
    // yield cost.
    assert_eq!(log[1].1.since(log[0].1), Dur::from_micros_f64(0.4 + 59.0));
    let st = stats.borrow();
    assert_eq!(st.live_stack_hits, 1, "A's own start");
    assert_eq!(st.live_stack_misses, 1, "B's start over live A");
    // Resuming A after B exits costs a full switch.
    assert_eq!(st.context_switches, 2);
    assert_eq!(st.yields, 1);
}

#[test]
fn mutex_contention_blocks_until_release_in_fifo_order() {
    let (sim, node, _) = test_node();
    let m = Mutex::new(&node, 0u32);
    let order: Rc<RefCell<Vec<u32>>> = Rc::default();

    // A locks, yields (so B and C run and block on the mutex), works 50 µs,
    // releases. B then C must acquire in FIFO order.
    let (ma, mb, mc) = (m.clone(), m.clone(), m.clone());
    let (oa, ob, oc) = (order.clone(), order.clone(), order.clone());
    let (na, _nb, _nc) = (node.clone(), node.clone(), node.clone());
    node.spawn(async move {
        let g = ma.lock().await;
        na.yield_now().await;
        na.charge(Dur::from_micros(50)).await;
        g.with_mut(|v| *v += 1);
        oa.borrow_mut().push(0);
    });
    node.spawn(async move {
        let g = mb.lock().await;
        g.with_mut(|v| *v += 1);
        ob.borrow_mut().push(1);
    });
    node.spawn(async move {
        let g = mc.lock().await;
        g.with_mut(|v| *v += 1);
        oc.borrow_mut().push(2);
    });
    sim.run();
    assert_eq!(*order.borrow(), vec![0, 1, 2]);
    assert!(!m.is_locked());
    assert_eq!(m.try_lock().expect("free").get(), 3);
}

#[test]
fn try_lock_fails_when_held() {
    let (sim, node, _) = test_node();
    let m = Mutex::new(&node, ());
    let n = node.clone();
    let m2 = m.clone();
    node.spawn(async move {
        let _g = m2.lock().await;
        assert!(m2.try_lock().is_none(), "held by ourselves");
        n.charge(Dur::from_micros(1)).await;
    });
    sim.run();
    assert!(m.try_lock().is_some(), "released at thread exit");
}

#[test]
fn condvar_wait_and_signal_round_trip() {
    let (sim, node, _) = test_node();
    let m = Mutex::new(&node, Vec::<u32>::new());
    let cv = CondVar::new(&node);
    let consumed: Rc<RefCell<Vec<u32>>> = Rc::default();

    let (mc, cvc, out) = (m.clone(), cv.clone(), consumed.clone());
    node.spawn(async move {
        let mut g = mc.lock().await;
        while g.with(|q| q.is_empty()) {
            g = cvc.wait(g).await;
        }
        let v = g.with_mut(|q| q.remove(0));
        out.borrow_mut().push(v);
    });
    let (mp, cvp, np) = (m.clone(), cv.clone(), node.clone());
    node.spawn(async move {
        np.charge(Dur::from_micros(30)).await;
        let g = mp.lock().await;
        g.with_mut(|q| q.push(42));
        cvp.signal();
    });
    sim.run();
    assert_eq!(*consumed.borrow(), vec![42]);
    assert_eq!(cv.waiters(), 0);
}

#[test]
fn condvar_broadcast_wakes_all_waiters() {
    let (sim, node, _) = test_node();
    let m = Mutex::new(&node, false);
    let cv = CondVar::new(&node);
    let woke = Rc::new(RefCell::new(0u32));
    for _ in 0..3 {
        let (mi, cvi, w) = (m.clone(), cv.clone(), woke.clone());
        node.spawn(async move {
            let mut g = mi.lock().await;
            while !g.get() {
                g = cvi.wait(g).await;
            }
            *w.borrow_mut() += 1;
        });
    }
    let (mb, cvb, nb) = (m.clone(), cv.clone(), node.clone());
    node.spawn(async move {
        nb.charge(Dur::from_micros(10)).await;
        let g = mb.lock().await;
        g.set(true);
        cvb.broadcast();
    });
    sim.run();
    assert_eq!(*woke.borrow(), 3);
}

#[test]
fn spin_resume_without_displacement_is_free() {
    let (sim, node, stats) = test_node();
    let flag = Flag::new();
    let f = flag.clone();
    let n = node.clone();
    let resumed_at = Rc::new(RefCell::new(Time::ZERO));
    let r = resumed_at.clone();
    node.spawn(async move {
        n.spin_on(f).await;
        *r.borrow_mut() = n.now();
    });
    // Set the flag from an external event at t = 50 µs.
    let n2 = node.clone();
    sim.schedule_at(Time::from_nanos(50_000), move |_| {
        flag.set();
        n2.kick();
    });
    sim.run();
    // The spinner never left the stack: no context switch on resume.
    assert_eq!(*resumed_at.borrow(), Time::from_nanos(50_000));
    assert_eq!(stats.borrow().context_switches, 0);
}

#[test]
fn spinner_displaced_by_runnable_thread_pays_switch_on_resume() {
    let (sim, node, stats) = test_node();
    let flag = Flag::new();
    let f = flag.clone();
    let (n1, n2) = (node.clone(), node.clone());
    let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
    let (o1, o2) = (order.clone(), order.clone());
    node.spawn(async move {
        o1.borrow_mut().push("spin-start");
        n1.spin_on(f).await;
        o1.borrow_mut().push("spin-resume");
    });
    let fl = flag.clone();
    node.spawn(async move {
        o2.borrow_mut().push("worker");
        n2.charge(Dur::from_micros(20)).await;
        fl.set();
    });
    sim.run();
    assert_eq!(*order.borrow(), vec!["spin-start", "worker", "spin-resume"]);
    let st = stats.borrow();
    // Worker started over the live spinner (miss), spinner resumed with a
    // full switch.
    assert_eq!(st.live_stack_misses, 1);
    assert!(st.context_switches >= 2);
}

#[test]
fn join_returns_the_child_result() {
    let (sim, node, _) = test_node();
    let n = node.clone();
    let got: Rc<RefCell<Option<u64>>> = Rc::default();
    let g = got.clone();
    node.spawn(async move {
        let child = n.spawn(async move { 21u64 * 2 });
        let v = child.join().await;
        *g.borrow_mut() = Some(v);
    });
    sim.run();
    assert_eq!(*got.borrow(), Some(42));
}

#[test]
fn join_on_completed_thread_is_immediate() {
    let (sim, node, _) = test_node();
    let n = node.clone();
    let ok = Rc::new(RefCell::new(false));
    let okc = ok.clone();
    node.spawn(async move {
        let child = n.spawn(async move { 7u8 });
        n.yield_now().await; // let the child run to completion
        assert!(child.is_done());
        assert_eq!(child.join().await, 7);
        *okc.borrow_mut() = true;
    });
    sim.run();
    assert!(*ok.borrow());
}

#[test]
fn queue_policy_controls_incoming_placement() {
    for (policy, expected) in [
        (QueuePolicy::Front, vec!["incoming", "app"]),
        (QueuePolicy::Back, vec!["app", "incoming"]),
    ] {
        let cfg = MachineConfig::cm5(1).with_queue_policy(policy);
        let (sim, node, _) = test_node_with(cfg);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (o1, o2, o3) = (order.clone(), order.clone(), order.clone());
        let n = node.clone();
        node.spawn(async move {
            o1.borrow_mut().push("spawner");
            n.spawn(async move {
                o2.borrow_mut().push("app");
            });
            n.spawn_incoming(async move {
                o3.borrow_mut().push("incoming");
            });
        });
        sim.run();
        let got = order.borrow();
        assert_eq!(got[0], "spawner");
        assert_eq!(&got[1..], expected.as_slice(), "policy {policy:?}");
    }
}

#[test]
fn provisional_slot_promotion_runs_like_a_thread() {
    let (sim, node, stats) = test_node();
    let n = node.clone();
    let ran = Rc::new(RefCell::new(false));
    let r = ran.clone();
    node.spawn(async move {
        let tid = n.reserve_provisional();
        // Simulate the OAM engine: the handler blocked, promote its
        // continuation, then wake it (as a lock release would).
        let r2 = r.clone();
        n.promote(tid, async move {
            *r2.borrow_mut() = true;
        });
        n.make_runnable(tid, Placement::Front);
    });
    sim.run();
    assert!(*ran.borrow());
    assert_eq!(stats.borrow().threads_created, 2);
    assert_eq!(stats.borrow().threads_completed, 2);
}

#[test]
fn provisional_wake_before_promotion_is_remembered() {
    let (sim, node, _) = test_node();
    let n = node.clone();
    let ran = Rc::new(RefCell::new(false));
    let r = ran.clone();
    node.spawn(async move {
        let tid = n.reserve_provisional();
        n.make_runnable(tid, Placement::Front); // wake arrives first
        let r2 = r.clone();
        n.promote(tid, async move {
            *r2.borrow_mut() = true;
        });
    });
    sim.run();
    assert!(*ran.borrow(), "promotion must observe the early wake");
}

#[test]
fn released_provisional_slot_is_removed() {
    let (sim, node, _) = test_node();
    let n = node.clone();
    node.spawn(async move {
        let tid = n.reserve_provisional();
        n.release_provisional(tid);
        // A stale wake for the released slot must be harmless.
        n.make_runnable(tid, Placement::Front);
    });
    sim.run();
    assert_eq!(node.live_threads(), 0);
}

#[test]
fn poll_batch_without_dispatcher_resumes_after_running_threads() {
    let (sim, node, _) = test_node();
    let n = node.clone();
    let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
    let (o1, o2) = (order.clone(), order.clone());
    node.spawn(async move {
        o1.borrow_mut().push("main-before");
        n.spawn(async move {
            o2.borrow_mut().push("spawned");
        });
        n.poll_batch().await;
        o1.borrow_mut().push("main-after");
    });
    sim.run();
    assert_eq!(*order.borrow(), vec!["main-before", "spawned", "main-after"]);
}

#[test]
fn identical_seeds_give_identical_schedules() {
    fn run() -> (Time, u64) {
        let (sim, node, stats) = test_node();
        for i in 0..8u64 {
            let n = node.clone();
            node.spawn(async move {
                n.charge(Dur::from_micros(3 + i)).await;
                n.yield_now().await;
                n.charge(Dur::from_micros(2)).await;
            });
        }
        let t = sim.run();
        let s = stats.borrow().context_switches;
        (t, s)
    }
    assert_eq!(run(), run());
}

#[test]
fn idle_time_is_accounted() {
    let (sim, node, stats) = test_node();
    // Run a trivial thread, then an external event 100 µs later wakes the
    // node again; the interval counts as idle.
    node.spawn(async move {});
    let n = node.clone();
    sim.schedule_at(Time::from_nanos(108_100), move |_| n.kick());
    sim.run();
    assert_eq!(stats.borrow().idle_time, Dur::from_micros(100));
}
