//! Benchmark regression gate.
//!
//! Compares a fresh `BENCH_results.json` (written by the `perfsuite`
//! binary) against the committed `BENCH_baseline.json` and exits non-zero
//! if any suite's wall-clock regressed by more than the threshold, or if a
//! suite's deterministic counters (events, answer) drifted — a drift means
//! the two files aren't measuring the same work and the wall-clock
//! comparison would be meaningless.
//!
//! Dependency-free single file so CI can run it without touching the
//! workspace build graph:
//!
//! ```sh
//! rustc -O scripts/bench_check.rs -o /tmp/bench_check
//! /tmp/bench_check BENCH_baseline.json BENCH_results.json
//! ```
//!
//! The parser handles exactly the JSON subset `perfsuite` emits (flat
//! string/number fields, one array of suite objects) — it is not a general
//! JSON parser and does not try to be.

use std::process::ExitCode;

/// Maximum tolerated wall-clock growth per suite, as a fraction of the
/// baseline (0.15 = +15%). Above this, the gate fails.
const MAX_WALL_REGRESSION: f64 = 0.15;

/// Wall threshold for suites gated `"wall"` or `"wall_answer"` — the
/// native-backend rows, whose wall clock is *real* time on a shared CI
/// host (observed drift on the same container across days exceeds 30%).
/// The looser bound still catches order-of-magnitude breakage without
/// tripping on scheduler noise.
const MAX_WALL_REGRESSION_NATIVE: f64 = 0.50;

/// Minimum batch-amortization ratio between the small-AM storm pair: the
/// naive per-message row must publish at least this many times more
/// batches (== wake signals issued) than the batched row. Deterministic
/// on the producer side — naive publishes once per deposit, batched at
/// the high-water mark and pass boundaries — so a failure means the
/// sender-side batching stopped coalescing.
const MIN_STORM_BATCH_RATIO: f64 = 2.0;
const STORM_SUITE: &str = "native_small_am_storm";
const STORM_NAIVE_SUITE: &str = "native_small_am_storm_naive";

/// Maximum tolerated p99 latency growth for service suites (0.25 = +25%).
/// The quantile is virtual-time, hence deterministic for a fixed workload,
/// but the histogram is log-bucketed: one bucket step is ~25%, so the
/// threshold trips on any real bucket move while ignoring formatting
/// noise. Suites without a `p99_us` field (or a zero baseline) skip the
/// check, mirroring the allocs gate.
const MAX_P99_REGRESSION: f64 = 0.25;

/// Maximum tolerated heap-allocation-count growth per suite (0.20 = +20%).
/// Unlike wall-clock, alloc counts are deterministic for a fixed workload,
/// so growth past the threshold means the code path really did start
/// allocating more — the slack only absorbs intentional small changes that
/// don't warrant re-recording.
const MAX_ALLOC_REGRESSION: f64 = 0.20;

#[derive(Debug, Default, Clone)]
struct Suite {
    name: String,
    /// Gate level, read from the *baseline* row: `"full"` (default when
    /// absent — pre-gates baselines), `"wall_answer"`, or `"wall"`.
    gates: String,
    wall_ms: f64,
    events: u64,
    answer: u64,
    allocs: u64,
    epochs: u64,
    deposits: u64,
    batches: u64,
    p99_us: f64,
}

/// Extract the value of `"key": ...` from a flat object body. String
/// values lose their quotes; numbers come back as the raw token.
fn field(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let i = body.find(&pat)? + pat.len();
    let rest = body[i..].trim_start().strip_prefix(':')?.trim_start();
    if let Some(s) = rest.strip_prefix('"') {
        Some(s[..s.find('"')?].to_string())
    } else {
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

/// Split the `"suites": [ {..}, {..} ]` array into per-suite object bodies.
fn suite_bodies(json: &str) -> Vec<String> {
    let Some(start) = json.find("\"suites\"") else { return Vec::new() };
    let Some(open) = json[start..].find('[').map(|i| start + i) else { return Vec::new() };
    let mut bodies = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = Some(open + i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = obj_start.take() {
                        bodies.push(json[s + 1..open + i].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    bodies
}

fn parse_suites(json: &str) -> Vec<Suite> {
    suite_bodies(json)
        .iter()
        .map(|body| {
            let num = |k: &str| field(body, k).and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.0);
            Suite {
                name: field(body, "name").unwrap_or_default(),
                gates: field(body, "gates").unwrap_or_else(|| "full".to_string()),
                wall_ms: num("wall_ms"),
                events: num("events") as u64,
                answer: num("answer") as u64,
                allocs: num("allocs") as u64,
                epochs: num("epochs") as u64,
                deposits: num("deposits") as u64,
                batches: num("batches") as u64,
                p99_us: num("p99_us"),
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(new_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_check BENCH_baseline.json BENCH_results.json");
        return ExitCode::from(2);
    };
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_check: cannot read {p}: {e}");
            None
        }
    };
    let (Some(base_json), Some(new_json)) = (read(&base_path), read(&new_path)) else {
        return ExitCode::from(2);
    };
    let base = parse_suites(&base_json);
    let new = parse_suites(&new_json);
    if base.is_empty() || new.is_empty() {
        eprintln!(
            "bench_check: no suites parsed (baseline: {}, new: {})",
            base.len(),
            new.len()
        );
        return ExitCode::from(2);
    }

    // Every gate violation, phrased for the failure summary: suite name,
    // baseline vs result, percentage delta.
    let mut failures: Vec<String> = Vec::new();
    println!(
        "{:<24} {:>12} {:>12} {:>8}   verdict",
        "suite", "base ms", "new ms", "delta"
    );
    for b in &base {
        let Some(n) = new.iter().find(|n| n.name == b.name) else {
            println!("{:<24} {:>12.2} {:>12} {:>8}   MISSING from new results", b.name, b.wall_ms, "-", "-");
            failures.push(format!("{}: missing from new results (baseline {:.2} ms)", b.name, b.wall_ms));
            continue;
        };
        // The baseline row's gate level decides which checks apply. Rows
        // below `"full"` are native-backend suites whose skipped gates are
        // logged explicitly rather than silently exempted.
        let full = b.gates == "full";
        let check_answer = b.gates != "wall";
        let wall_limit = if full { MAX_WALL_REGRESSION } else { MAX_WALL_REGRESSION_NATIVE };
        if !full {
            println!(
                "{:<24} gates \"{}\": holding {} to +{:.0}% wall; skipping {} checks",
                b.name,
                b.gates,
                if check_answer { "answer exact and wall" } else { "wall only" },
                wall_limit * 100.0,
                if check_answer { "allocs/epochs/p99" } else { "answer/allocs/epochs/p99" },
            );
        }
        // Determinism cross-check: same suite definition must do the same
        // virtual work. `events` legitimately changes when the simulator or
        // workload changes — that's what re-recording the baseline is for —
        // but inside one CI run it must match the committed expectations
        // unless the PR also updates the baseline.
        if check_answer && n.answer != b.answer {
            println!(
                "{:<24} {:>12.2} {:>12.2} {:>8}   ANSWER DRIFT ({} -> {})",
                b.name, b.wall_ms, n.wall_ms, "-", b.answer, n.answer
            );
            failures
                .push(format!("{}: answer drift (baseline {} vs result {})", b.name, b.answer, n.answer));
            continue;
        }
        // The epoch count is a host-schedule invariant of the epoch engine:
        // it depends only on the fence policy and the deterministic virtual
        // workload, never on thread timing, so it must match *exactly*.
        // Baselines recorded before the counter existed (or suites running
        // the legacy/native engines) carry 0 — skip, same as allocs.
        if full && b.epochs > 0 && n.epochs != b.epochs {
            println!(
                "{:<24} {:>12.2} {:>12.2} {:>8}   EPOCH DRIFT ({} -> {})",
                b.name, b.wall_ms, n.wall_ms, "-", b.epochs, n.epochs
            );
            failures.push(format!(
                "{}: epoch drift (baseline {} vs result {}) — fence schedule changed; \
                 re-record if intentional",
                b.name, b.epochs, n.epochs
            ));
            continue;
        }
        // Delivery-layer determinism on epoch rows: deposits (boundary
        // records handed to the batch layer) and batches (non-empty slot
        // publishes) are host-schedule invariants of the epoch engine,
        // exactly like the epoch count. Native rows and pre-counter
        // baselines (deposits == 0) skip, same as allocs.
        if full && b.epochs > 0 && b.deposits > 0
            && (n.deposits != b.deposits || n.batches != b.batches)
        {
            println!(
                "{:<24} {:>12.2} {:>12.2} {:>8}   DELIVERY DRIFT (deposits {} -> {}, batches {} -> {})",
                b.name, b.wall_ms, n.wall_ms, "-", b.deposits, n.deposits, b.batches, n.batches
            );
            failures.push(format!(
                "{}: delivery drift (deposits {} vs {}, batches {} vs {}) — batch publish \
                 schedule changed; re-record if intentional",
                b.name, b.deposits, n.deposits, b.batches, n.batches
            ));
            continue;
        }
        let delta = (n.wall_ms - b.wall_ms) / b.wall_ms.max(1e-9);
        // Alloc counts are deterministic; gate them like wall-clock but
        // with their own threshold. Baselines recorded before alloc
        // tracking carry 0 — skip the check rather than divide by it.
        let alloc_delta = (full && b.allocs > 0)
            .then(|| (n.allocs as f64 - b.allocs as f64) / b.allocs as f64);
        // Service suites also carry a deterministic virtual-time p99; a
        // zero/absent baseline skips the check (same pattern as allocs).
        let p99_delta = (full && b.p99_us > 0.0).then(|| (n.p99_us - b.p99_us) / b.p99_us);
        let verdict = if delta > wall_limit {
            failures.push(format!(
                "{}: wall {:.2} ms (baseline) vs {:.2} ms (result), {:+.1}% > +{:.0}% limit",
                b.name,
                b.wall_ms,
                n.wall_ms,
                delta * 100.0,
                wall_limit * 100.0
            ));
            "REGRESSED"
        } else if alloc_delta.is_some_and(|d| d > MAX_ALLOC_REGRESSION) {
            failures.push(format!(
                "{}: allocs {} (baseline) vs {} (result), {:+.1}% > +{:.0}% limit",
                b.name,
                b.allocs,
                n.allocs,
                alloc_delta.unwrap_or(0.0) * 100.0,
                MAX_ALLOC_REGRESSION * 100.0
            ));
            "ALLOC REGRESSED"
        } else if p99_delta.is_some_and(|d| d > MAX_P99_REGRESSION) {
            failures.push(format!(
                "{}: p99 {:.0} us (baseline) vs {:.0} us (result), {:+.1}% > +{:.0}% limit",
                b.name,
                b.p99_us,
                n.p99_us,
                p99_delta.unwrap_or(0.0) * 100.0,
                MAX_P99_REGRESSION * 100.0
            ));
            "P99 REGRESSED"
        } else {
            "ok"
        };
        let events_note = if n.events != b.events { " (events changed; consider re-recording baseline)" } else { "" };
        let alloc_note = match alloc_delta {
            Some(d) => format!(" allocs {} -> {} ({:+.1}%)", b.allocs, n.allocs, d * 100.0),
            None => String::new(),
        };
        let p99_note = match p99_delta {
            Some(d) => format!(" p99 {:.0} -> {:.0} us ({:+.1}%)", b.p99_us, n.p99_us, d * 100.0),
            None => String::new(),
        };
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>+7.1}%   {verdict}{alloc_note}{p99_note}{events_note}",
            b.name, b.wall_ms, n.wall_ms, delta * 100.0
        );
    }
    // Every result row must have a baseline row: an unknown suite means
    // perfsuite grew a workload without re-recording, and whatever it
    // measures is silently ungated. (This used to be how native rows
    // dodged the gate; they now sit in the baseline with explicit
    // `gates` levels instead.)
    for n in &new {
        if !base.iter().any(|b| b.name == n.name) {
            println!(
                "{:<24} {:>12} {:>12.2} {:>8}   UNKNOWN suite (absent from baseline)",
                n.name, "-", n.wall_ms, "-"
            );
            failures.push(format!(
                "{}: present in results but missing from baseline — re-record the baseline \
                 so the new suite is gated",
                n.name
            ));
        }
    }

    // The storm pair's amortization invariant: sender-side batching must
    // keep coalescing. Checked on the fresh results (both rows measured
    // this run, same host), not against the baseline.
    if let (Some(storm), Some(naive)) = (
        new.iter().find(|s| s.name == STORM_SUITE),
        new.iter().find(|s| s.name == STORM_NAIVE_SUITE),
    ) {
        let ratio = naive.batches as f64 / (storm.batches as f64).max(1.0);
        println!(
            "\nstorm amortization: naive {} batches / batched {} batches = {:.1}x (floor {:.1}x)",
            naive.batches, storm.batches, ratio, MIN_STORM_BATCH_RATIO
        );
        if storm.batches == 0 || ratio < MIN_STORM_BATCH_RATIO {
            failures.push(format!(
                "{STORM_SUITE}: batch amortization {ratio:.1}x below the {MIN_STORM_BATCH_RATIO:.1}x \
                 floor (naive {} vs batched {} publishes) — sender-side batching stopped coalescing",
                naive.batches, storm.batches
            ));
        }
    }

    if !failures.is_empty() {
        eprintln!("\nbench_check: {} suite(s) failed the gate:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        eprintln!(
            "if intentional, re-record with `cargo run --release -p oam-bench --bin perfsuite \
             -- --quick --out BENCH_baseline.json`"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nbench_check: all suites within {:.0}% wall / {:.0}% allocs / {:.0}% p99 of baseline",
        MAX_WALL_REGRESSION * 100.0,
        MAX_ALLOC_REGRESSION * 100.0,
        MAX_P99_REGRESSION * 100.0
    );
    ExitCode::SUCCESS
}
