/root/repo/target/debug/deps/oam_bench-52b264e794d749d7.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/liboam_bench-52b264e794d749d7.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
