/root/repo/target/debug/deps/fig_bulk_transfer-1061bb09ff018237.d: crates/bench/benches/fig_bulk_transfer.rs Cargo.toml

/root/repo/target/debug/deps/libfig_bulk_transfer-1061bb09ff018237.rmeta: crates/bench/benches/fig_bulk_transfer.rs Cargo.toml

crates/bench/benches/fig_bulk_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
