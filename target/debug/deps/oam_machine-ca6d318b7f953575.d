/root/repo/target/debug/deps/oam_machine-ca6d318b7f953575.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/debug/deps/liboam_machine-ca6d318b7f953575.rmeta: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
