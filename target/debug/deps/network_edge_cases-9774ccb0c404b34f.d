/root/repo/target/debug/deps/network_edge_cases-9774ccb0c404b34f.d: crates/net/tests/network_edge_cases.rs

/root/repo/target/debug/deps/network_edge_cases-9774ccb0c404b34f: crates/net/tests/network_edge_cases.rs

crates/net/tests/network_edge_cases.rs:
