/root/repo/target/debug/deps/optimistic_active_messages-46aac0f95dea446d.d: src/lib.rs

/root/repo/target/debug/deps/liboptimistic_active_messages-46aac0f95dea446d.rlib: src/lib.rs

/root/repo/target/debug/deps/liboptimistic_active_messages-46aac0f95dea446d.rmeta: src/lib.rs

src/lib.rs:
