/root/repo/target/debug/deps/fig1_triangle-79967465ee58ee91.d: crates/bench/benches/fig1_triangle.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_triangle-79967465ee58ee91.rmeta: crates/bench/benches/fig1_triangle.rs Cargo.toml

crates/bench/benches/fig1_triangle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
