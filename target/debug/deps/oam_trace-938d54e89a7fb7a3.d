/root/repo/target/debug/deps/oam_trace-938d54e89a7fb7a3.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/debug/deps/liboam_trace-938d54e89a7fb7a3.rlib: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/debug/deps/liboam_trace-938d54e89a7fb7a3.rmeta: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
