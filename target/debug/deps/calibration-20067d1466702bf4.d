/root/repo/target/debug/deps/calibration-20067d1466702bf4.d: crates/bench/tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-20067d1466702bf4.rmeta: crates/bench/tests/calibration.rs Cargo.toml

crates/bench/tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
