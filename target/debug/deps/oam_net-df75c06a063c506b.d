/root/repo/target/debug/deps/oam_net-df75c06a063c506b.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs Cargo.toml

/root/repo/target/debug/deps/liboam_net-df75c06a063c506b.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
