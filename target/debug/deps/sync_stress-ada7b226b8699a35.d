/root/repo/target/debug/deps/sync_stress-ada7b226b8699a35.d: crates/threads/tests/sync_stress.rs Cargo.toml

/root/repo/target/debug/deps/libsync_stress-ada7b226b8699a35.rmeta: crates/threads/tests/sync_stress.rs Cargo.toml

crates/threads/tests/sync_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
