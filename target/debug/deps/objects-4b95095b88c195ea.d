/root/repo/target/debug/deps/objects-4b95095b88c195ea.d: crates/objects/tests/objects.rs Cargo.toml

/root/repo/target/debug/deps/libobjects-4b95095b88c195ea.rmeta: crates/objects/tests/objects.rs Cargo.toml

crates/objects/tests/objects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
