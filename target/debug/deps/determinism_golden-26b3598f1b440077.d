/root/repo/target/debug/deps/determinism_golden-26b3598f1b440077.d: tests/determinism_golden.rs

/root/repo/target/debug/deps/determinism_golden-26b3598f1b440077: tests/determinism_golden.rs

tests/determinism_golden.rs:
