/root/repo/target/debug/deps/scheduler-dd21e7243297a939.d: crates/threads/tests/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-dd21e7243297a939.rmeta: crates/threads/tests/scheduler.rs Cargo.toml

crates/threads/tests/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
