/root/repo/target/debug/deps/oam_objects-d4b3e5b116719084.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/debug/deps/oam_objects-d4b3e5b116719084: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
