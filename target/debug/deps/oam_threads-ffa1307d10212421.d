/root/repo/target/debug/deps/oam_threads-ffa1307d10212421.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/debug/deps/liboam_threads-ffa1307d10212421.rmeta: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
