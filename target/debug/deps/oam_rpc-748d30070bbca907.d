/root/repo/target/debug/deps/oam_rpc-748d30070bbca907.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/liboam_rpc-748d30070bbca907.rmeta: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs Cargo.toml

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
