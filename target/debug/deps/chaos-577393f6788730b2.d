/root/repo/target/debug/deps/chaos-577393f6788730b2.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-577393f6788730b2: tests/chaos.rs

tests/chaos.rs:
