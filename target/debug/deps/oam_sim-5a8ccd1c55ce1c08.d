/root/repo/target/debug/deps/oam_sim-5a8ccd1c55ce1c08.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/debug/deps/oam_sim-5a8ccd1c55ce1c08: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
