/root/repo/target/debug/deps/oam_core-cfd71399c6728bad.d: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/debug/deps/liboam_core-cfd71399c6728bad.rlib: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/debug/deps/liboam_core-cfd71399c6728bad.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
