/root/repo/target/debug/deps/sync_stress-2f97c21593a00c85.d: crates/threads/tests/sync_stress.rs

/root/repo/target/debug/deps/sync_stress-2f97c21593a00c85: crates/threads/tests/sync_stress.rs

crates/threads/tests/sync_stress.rs:
