/root/repo/target/debug/deps/properties-bc61a0127914cefb.d: tests/properties.rs

/root/repo/target/debug/deps/properties-bc61a0127914cefb: tests/properties.rs

tests/properties.rs:
