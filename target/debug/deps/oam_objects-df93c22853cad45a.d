/root/repo/target/debug/deps/oam_objects-df93c22853cad45a.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/debug/deps/liboam_objects-df93c22853cad45a.rlib: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/debug/deps/liboam_objects-df93c22853cad45a.rmeta: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
