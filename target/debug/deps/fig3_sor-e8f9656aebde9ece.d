/root/repo/target/debug/deps/fig3_sor-e8f9656aebde9ece.d: crates/bench/benches/fig3_sor.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_sor-e8f9656aebde9ece.rmeta: crates/bench/benches/fig3_sor.rs Cargo.toml

crates/bench/benches/fig3_sor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
