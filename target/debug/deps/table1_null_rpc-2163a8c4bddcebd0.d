/root/repo/target/debug/deps/table1_null_rpc-2163a8c4bddcebd0.d: crates/bench/benches/table1_null_rpc.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_null_rpc-2163a8c4bddcebd0.rmeta: crates/bench/benches/table1_null_rpc.rs Cargo.toml

crates/bench/benches/table1_null_rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
