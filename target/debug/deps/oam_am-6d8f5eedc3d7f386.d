/root/repo/target/debug/deps/oam_am-6d8f5eedc3d7f386.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/debug/deps/liboam_am-6d8f5eedc3d7f386.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
