/root/repo/target/debug/deps/collectives_under_load-682e2331f2a4f110.d: crates/machine/tests/collectives_under_load.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives_under_load-682e2331f2a4f110.rmeta: crates/machine/tests/collectives_under_load.rs Cargo.toml

crates/machine/tests/collectives_under_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
