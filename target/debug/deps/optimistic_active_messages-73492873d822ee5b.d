/root/repo/target/debug/deps/optimistic_active_messages-73492873d822ee5b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboptimistic_active_messages-73492873d822ee5b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
