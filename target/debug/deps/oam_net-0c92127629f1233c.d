/root/repo/target/debug/deps/oam_net-0c92127629f1233c.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/debug/deps/liboam_net-0c92127629f1233c.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/debug/deps/liboam_net-0c92127629f1233c.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
