/root/repo/target/debug/deps/optimistic_active_messages-ea0b1979c5493bf8.d: src/lib.rs

/root/repo/target/debug/deps/optimistic_active_messages-ea0b1979c5493bf8: src/lib.rs

src/lib.rs:
