/root/repo/target/debug/deps/oam_core-7e602d123bbbbeac.d: crates/core/src/lib.rs crates/core/src/engine.rs Cargo.toml

/root/repo/target/debug/deps/liboam_core-7e602d123bbbbeac.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
