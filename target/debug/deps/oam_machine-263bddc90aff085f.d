/root/repo/target/debug/deps/oam_machine-263bddc90aff085f.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/debug/deps/oam_machine-263bddc90aff085f: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
