/root/repo/target/debug/deps/calibration-a0dbb232bf2b6d6c.d: crates/bench/tests/calibration.rs

/root/repo/target/debug/deps/calibration-a0dbb232bf2b6d6c: crates/bench/tests/calibration.rs

crates/bench/tests/calibration.rs:
