/root/repo/target/debug/deps/end_to_end-6572ba0eb96c0c21.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6572ba0eb96c0c21: tests/end_to_end.rs

tests/end_to_end.rs:
