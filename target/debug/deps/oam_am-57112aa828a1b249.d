/root/repo/target/debug/deps/oam_am-57112aa828a1b249.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

/root/repo/target/debug/deps/liboam_am-57112aa828a1b249.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
