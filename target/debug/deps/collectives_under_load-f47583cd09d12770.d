/root/repo/target/debug/deps/collectives_under_load-f47583cd09d12770.d: crates/machine/tests/collectives_under_load.rs

/root/repo/target/debug/deps/collectives_under_load-f47583cd09d12770: crates/machine/tests/collectives_under_load.rs

crates/machine/tests/collectives_under_load.rs:
