/root/repo/target/debug/deps/oam_machine-03e043ece455908c.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/debug/deps/liboam_machine-03e043ece455908c.rlib: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/debug/deps/liboam_machine-03e043ece455908c.rmeta: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
