/root/repo/target/debug/deps/network_edge_cases-c44f5f993b6440cc.d: crates/net/tests/network_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_edge_cases-c44f5f993b6440cc.rmeta: crates/net/tests/network_edge_cases.rs Cargo.toml

crates/net/tests/network_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
