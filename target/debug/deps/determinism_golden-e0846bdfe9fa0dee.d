/root/repo/target/debug/deps/determinism_golden-e0846bdfe9fa0dee.d: tests/determinism_golden.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_golden-e0846bdfe9fa0dee.rmeta: tests/determinism_golden.rs Cargo.toml

tests/determinism_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
