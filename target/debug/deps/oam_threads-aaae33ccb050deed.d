/root/repo/target/debug/deps/oam_threads-aaae33ccb050deed.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/debug/deps/oam_threads-aaae33ccb050deed: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
