/root/repo/target/debug/deps/oam_am-6a541c587717d348.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/debug/deps/oam_am-6a541c587717d348: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
