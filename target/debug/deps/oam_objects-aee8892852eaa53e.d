/root/repo/target/debug/deps/oam_objects-aee8892852eaa53e.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs Cargo.toml

/root/repo/target/debug/deps/liboam_objects-aee8892852eaa53e.rmeta: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs Cargo.toml

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
