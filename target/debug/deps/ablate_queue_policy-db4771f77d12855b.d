/root/repo/target/debug/deps/ablate_queue_policy-db4771f77d12855b.d: crates/bench/benches/ablate_queue_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablate_queue_policy-db4771f77d12855b.rmeta: crates/bench/benches/ablate_queue_policy.rs Cargo.toml

crates/bench/benches/ablate_queue_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
