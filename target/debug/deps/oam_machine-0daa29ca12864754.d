/root/repo/target/debug/deps/oam_machine-0daa29ca12864754.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/liboam_machine-0daa29ca12864754.rmeta: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
