/root/repo/target/debug/deps/perfsuite-fde3b4f4a2b96b90.d: crates/bench/src/bin/perfsuite.rs

/root/repo/target/debug/deps/perfsuite-fde3b4f4a2b96b90: crates/bench/src/bin/perfsuite.rs

crates/bench/src/bin/perfsuite.rs:
