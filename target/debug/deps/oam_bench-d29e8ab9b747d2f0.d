/root/repo/target/debug/deps/oam_bench-d29e8ab9b747d2f0.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/liboam_bench-d29e8ab9b747d2f0.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
