/root/repo/target/debug/deps/oam_core-821886767b25ba03.d: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/debug/deps/liboam_core-821886767b25ba03.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
