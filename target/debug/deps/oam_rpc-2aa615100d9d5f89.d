/root/repo/target/debug/deps/oam_rpc-2aa615100d9d5f89.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/debug/deps/liboam_rpc-2aa615100d9d5f89.rlib: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/debug/deps/liboam_rpc-2aa615100d9d5f89.rmeta: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
