/root/repo/target/debug/deps/oam_am-ca702c79f0da506d.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

/root/repo/target/debug/deps/liboam_am-ca702c79f0da506d.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
