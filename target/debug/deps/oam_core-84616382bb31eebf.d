/root/repo/target/debug/deps/oam_core-84616382bb31eebf.d: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/debug/deps/oam_core-84616382bb31eebf: crates/core/src/lib.rs crates/core/src/engine.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
