/root/repo/target/debug/deps/oam_trace-af2cb502272f7c5b.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/debug/deps/oam_trace-af2cb502272f7c5b: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
