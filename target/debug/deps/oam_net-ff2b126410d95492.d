/root/repo/target/debug/deps/oam_net-ff2b126410d95492.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/debug/deps/oam_net-ff2b126410d95492: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
