/root/repo/target/debug/deps/oam_trace-eff52476d8d3a54e.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/debug/deps/liboam_trace-eff52476d8d3a54e.rmeta: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
