/root/repo/target/debug/deps/oam_am-e83d11db7488d902.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/debug/deps/liboam_am-e83d11db7488d902.rlib: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/debug/deps/liboam_am-e83d11db7488d902.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
