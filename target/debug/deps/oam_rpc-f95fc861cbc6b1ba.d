/root/repo/target/debug/deps/oam_rpc-f95fc861cbc6b1ba.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/debug/deps/liboam_rpc-f95fc861cbc6b1ba.rmeta: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
