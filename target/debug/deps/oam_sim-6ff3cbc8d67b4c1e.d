/root/repo/target/debug/deps/oam_sim-6ff3cbc8d67b4c1e.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/debug/deps/liboam_sim-6ff3cbc8d67b4c1e.rlib: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/debug/deps/liboam_sim-6ff3cbc8d67b4c1e.rmeta: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
