/root/repo/target/debug/deps/oam_bench-0ea77aa914e8bc3d.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/liboam_bench-0ea77aa914e8bc3d.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/liboam_bench-0ea77aa914e8bc3d.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
