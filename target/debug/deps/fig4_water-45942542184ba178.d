/root/repo/target/debug/deps/fig4_water-45942542184ba178.d: crates/bench/benches/fig4_water.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_water-45942542184ba178.rmeta: crates/bench/benches/fig4_water.rs Cargo.toml

crates/bench/benches/fig4_water.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
