/root/repo/target/debug/deps/fig2_tsp-475fcdf08cb7bbce.d: crates/bench/benches/fig2_tsp.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_tsp-475fcdf08cb7bbce.rmeta: crates/bench/benches/fig2_tsp.rs Cargo.toml

crates/bench/benches/fig2_tsp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
