/root/repo/target/debug/deps/oam_rpc-85825d5809e95ab3.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/debug/deps/oam_rpc-85825d5809e95ab3: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
