/root/repo/target/debug/deps/table3_water_aborts-2dcf89a519296cc2.d: crates/bench/benches/table3_water_aborts.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_water_aborts-2dcf89a519296cc2.rmeta: crates/bench/benches/table3_water_aborts.rs Cargo.toml

crates/bench/benches/table3_water_aborts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
