/root/repo/target/debug/deps/nested_and_bulk-10bf260c0f4fe5d9.d: crates/rpc/tests/nested_and_bulk.rs Cargo.toml

/root/repo/target/debug/deps/libnested_and_bulk-10bf260c0f4fe5d9.rmeta: crates/rpc/tests/nested_and_bulk.rs Cargo.toml

crates/rpc/tests/nested_and_bulk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
