/root/repo/target/debug/deps/nested_and_bulk-2a7d96e609765e5f.d: crates/rpc/tests/nested_and_bulk.rs

/root/repo/target/debug/deps/nested_and_bulk-2a7d96e609765e5f: crates/rpc/tests/nested_and_bulk.rs

crates/rpc/tests/nested_and_bulk.rs:
