/root/repo/target/debug/deps/ablate_handler_budget-d291760295e3722d.d: crates/bench/benches/ablate_handler_budget.rs Cargo.toml

/root/repo/target/debug/deps/libablate_handler_budget-d291760295e3722d.rmeta: crates/bench/benches/ablate_handler_budget.rs Cargo.toml

crates/bench/benches/ablate_handler_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
