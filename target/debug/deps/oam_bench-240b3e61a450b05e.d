/root/repo/target/debug/deps/oam_bench-240b3e61a450b05e.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/oam_bench-240b3e61a450b05e: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
