/root/repo/target/debug/deps/scheduler-935715c002b96895.d: crates/threads/tests/scheduler.rs

/root/repo/target/debug/deps/scheduler-935715c002b96895: crates/threads/tests/scheduler.rs

crates/threads/tests/scheduler.rs:
