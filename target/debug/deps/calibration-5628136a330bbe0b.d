/root/repo/target/debug/deps/calibration-5628136a330bbe0b.d: crates/bench/tests/calibration.rs

/root/repo/target/debug/deps/calibration-5628136a330bbe0b: crates/bench/tests/calibration.rs

crates/bench/tests/calibration.rs:
