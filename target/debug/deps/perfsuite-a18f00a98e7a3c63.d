/root/repo/target/debug/deps/perfsuite-a18f00a98e7a3c63.d: crates/bench/src/bin/perfsuite.rs

/root/repo/target/debug/deps/perfsuite-a18f00a98e7a3c63: crates/bench/src/bin/perfsuite.rs

crates/bench/src/bin/perfsuite.rs:
