/root/repo/target/debug/deps/oam_sim-6cd232d8e0b359da.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/debug/deps/liboam_sim-6cd232d8e0b359da.rmeta: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
