/root/repo/target/debug/deps/perfsuite-3a05b5e891c42c76.d: crates/bench/src/bin/perfsuite.rs Cargo.toml

/root/repo/target/debug/deps/libperfsuite-3a05b5e891c42c76.rmeta: crates/bench/src/bin/perfsuite.rs Cargo.toml

crates/bench/src/bin/perfsuite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
