/root/repo/target/debug/deps/rpc_end_to_end-051e19d28a5fc15c.d: crates/rpc/tests/rpc_end_to_end.rs

/root/repo/target/debug/deps/rpc_end_to_end-051e19d28a5fc15c: crates/rpc/tests/rpc_end_to_end.rs

crates/rpc/tests/rpc_end_to_end.rs:
