/root/repo/target/debug/deps/oam_objects-3f1e15cb6fac9c85.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs Cargo.toml

/root/repo/target/debug/deps/liboam_objects-3f1e15cb6fac9c85.rmeta: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs Cargo.toml

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
