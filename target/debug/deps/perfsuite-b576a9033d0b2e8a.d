/root/repo/target/debug/deps/perfsuite-b576a9033d0b2e8a.d: crates/bench/src/bin/perfsuite.rs Cargo.toml

/root/repo/target/debug/deps/libperfsuite-b576a9033d0b2e8a.rmeta: crates/bench/src/bin/perfsuite.rs Cargo.toml

crates/bench/src/bin/perfsuite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
