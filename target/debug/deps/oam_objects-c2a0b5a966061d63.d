/root/repo/target/debug/deps/oam_objects-c2a0b5a966061d63.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/debug/deps/liboam_objects-c2a0b5a966061d63.rmeta: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
