/root/repo/target/debug/deps/criterion_micro-c6af6116fed134c0.d: crates/bench/benches/criterion_micro.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_micro-c6af6116fed134c0.rmeta: crates/bench/benches/criterion_micro.rs Cargo.toml

crates/bench/benches/criterion_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
