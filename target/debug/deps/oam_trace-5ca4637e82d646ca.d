/root/repo/target/debug/deps/oam_trace-5ca4637e82d646ca.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs Cargo.toml

/root/repo/target/debug/deps/liboam_trace-5ca4637e82d646ca.rmeta: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
