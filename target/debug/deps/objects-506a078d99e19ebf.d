/root/repo/target/debug/deps/objects-506a078d99e19ebf.d: crates/objects/tests/objects.rs

/root/repo/target/debug/deps/objects-506a078d99e19ebf: crates/objects/tests/objects.rs

crates/objects/tests/objects.rs:
