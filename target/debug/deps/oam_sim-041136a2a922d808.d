/root/repo/target/debug/deps/oam_sim-041136a2a922d808.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/liboam_sim-041136a2a922d808.rmeta: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
