/root/repo/target/debug/deps/ablate_buffering-71a224277e956df9.d: crates/bench/benches/ablate_buffering.rs Cargo.toml

/root/repo/target/debug/deps/libablate_buffering-71a224277e956df9.rmeta: crates/bench/benches/ablate_buffering.rs Cargo.toml

crates/bench/benches/ablate_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
