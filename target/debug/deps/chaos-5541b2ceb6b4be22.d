/root/repo/target/debug/deps/chaos-5541b2ceb6b4be22.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-5541b2ceb6b4be22.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
