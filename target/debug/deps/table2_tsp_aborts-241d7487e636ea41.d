/root/repo/target/debug/deps/table2_tsp_aborts-241d7487e636ea41.d: crates/bench/benches/table2_tsp_aborts.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_tsp_aborts-241d7487e636ea41.rmeta: crates/bench/benches/table2_tsp_aborts.rs Cargo.toml

crates/bench/benches/table2_tsp_aborts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
