/root/repo/target/debug/deps/oam_threads-2e89229d94caa1fc.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/liboam_threads-2e89229d94caa1fc.rmeta: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs Cargo.toml

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
