/root/repo/target/debug/deps/ablate_abort_strategy-a02bf03a1e909945.d: crates/bench/benches/ablate_abort_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libablate_abort_strategy-a02bf03a1e909945.rmeta: crates/bench/benches/ablate_abort_strategy.rs Cargo.toml

crates/bench/benches/ablate_abort_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
