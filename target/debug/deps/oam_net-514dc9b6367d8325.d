/root/repo/target/debug/deps/oam_net-514dc9b6367d8325.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/debug/deps/liboam_net-514dc9b6367d8325.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
