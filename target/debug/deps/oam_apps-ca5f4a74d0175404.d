/root/repo/target/debug/deps/oam_apps-ca5f4a74d0175404.d: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

/root/repo/target/debug/deps/liboam_apps-ca5f4a74d0175404.rmeta: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

crates/apps/src/lib.rs:
crates/apps/src/sor/mod.rs:
crates/apps/src/sor/grid.rs:
crates/apps/src/sor/run.rs:
crates/apps/src/system.rs:
crates/apps/src/triangle/mod.rs:
crates/apps/src/triangle/board.rs:
crates/apps/src/triangle/run.rs:
crates/apps/src/tsp/mod.rs:
crates/apps/src/tsp/cities.rs:
crates/apps/src/tsp/run.rs:
crates/apps/src/water/mod.rs:
crates/apps/src/water/run.rs:
crates/apps/src/water/sim.rs:
