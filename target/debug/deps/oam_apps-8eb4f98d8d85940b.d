/root/repo/target/debug/deps/oam_apps-8eb4f98d8d85940b.d: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

/root/repo/target/debug/deps/liboam_apps-8eb4f98d8d85940b.rlib: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

/root/repo/target/debug/deps/liboam_apps-8eb4f98d8d85940b.rmeta: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

crates/apps/src/lib.rs:
crates/apps/src/sor/mod.rs:
crates/apps/src/sor/grid.rs:
crates/apps/src/sor/run.rs:
crates/apps/src/system.rs:
crates/apps/src/triangle/mod.rs:
crates/apps/src/triangle/board.rs:
crates/apps/src/triangle/run.rs:
crates/apps/src/tsp/mod.rs:
crates/apps/src/tsp/cities.rs:
crates/apps/src/tsp/run.rs:
crates/apps/src/water/mod.rs:
crates/apps/src/water/run.rs:
crates/apps/src/water/sim.rs:
