/root/repo/target/debug/deps/oam_threads-94a91fdb501283d7.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/debug/deps/liboam_threads-94a91fdb501283d7.rlib: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/debug/deps/liboam_threads-94a91fdb501283d7.rmeta: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
