/root/repo/target/debug/deps/oam_model-6daf1b001f4ce068.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

/root/repo/target/debug/deps/liboam_model-6daf1b001f4ce068.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/fault.rs:
crates/model/src/ids.rs:
crates/model/src/stats.rs:
crates/model/src/time.rs:
crates/model/src/trace.rs:
