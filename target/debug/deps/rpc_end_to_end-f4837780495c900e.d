/root/repo/target/debug/deps/rpc_end_to_end-f4837780495c900e.d: crates/rpc/tests/rpc_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/librpc_end_to_end-f4837780495c900e.rmeta: crates/rpc/tests/rpc_end_to_end.rs Cargo.toml

crates/rpc/tests/rpc_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
