/root/repo/target/debug/deps/oam_model-2da787e6ec55a189.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/liboam_model-2da787e6ec55a189.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/fault.rs:
crates/model/src/ids.rs:
crates/model/src/stats.rs:
crates/model/src/time.rs:
crates/model/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
