/root/repo/target/debug/examples/paper_tour-ab52f951c7f0c6cd.d: examples/paper_tour.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_tour-ab52f951c7f0c6cd.rmeta: examples/paper_tour.rs Cargo.toml

examples/paper_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
