/root/repo/target/debug/examples/stencil-fe59ff35924b9943.d: examples/stencil.rs Cargo.toml

/root/repo/target/debug/examples/libstencil-fe59ff35924b9943.rmeta: examples/stencil.rs Cargo.toml

examples/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
