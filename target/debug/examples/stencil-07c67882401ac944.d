/root/repo/target/debug/examples/stencil-07c67882401ac944.d: examples/stencil.rs

/root/repo/target/debug/examples/stencil-07c67882401ac944: examples/stencil.rs

examples/stencil.rs:
