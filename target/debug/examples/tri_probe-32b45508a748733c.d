/root/repo/target/debug/examples/tri_probe-32b45508a748733c.d: crates/apps/examples/tri_probe.rs

/root/repo/target/debug/examples/tri_probe-32b45508a748733c: crates/apps/examples/tri_probe.rs

crates/apps/examples/tri_probe.rs:
