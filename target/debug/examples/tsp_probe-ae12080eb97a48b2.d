/root/repo/target/debug/examples/tsp_probe-ae12080eb97a48b2.d: crates/apps/examples/tsp_probe.rs

/root/repo/target/debug/examples/tsp_probe-ae12080eb97a48b2: crates/apps/examples/tsp_probe.rs

crates/apps/examples/tsp_probe.rs:
