/root/repo/target/debug/examples/job_queue-40ee6b78b259fcb5.d: examples/job_queue.rs Cargo.toml

/root/repo/target/debug/examples/libjob_queue-40ee6b78b259fcb5.rmeta: examples/job_queue.rs Cargo.toml

examples/job_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
