/root/repo/target/debug/examples/job_queue-8dd3285936e4436a.d: examples/job_queue.rs

/root/repo/target/debug/examples/job_queue-8dd3285936e4436a: examples/job_queue.rs

examples/job_queue.rs:
