/root/repo/target/debug/examples/paper_tour-f920f14ca84779fb.d: examples/paper_tour.rs

/root/repo/target/debug/examples/paper_tour-f920f14ca84779fb: examples/paper_tour.rs

examples/paper_tour.rs:
