/root/repo/target/debug/examples/trace_run-10d5f26c4eb9c74c.d: examples/trace_run.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_run-10d5f26c4eb9c74c.rmeta: examples/trace_run.rs Cargo.toml

examples/trace_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
