/root/repo/target/debug/examples/sor_probe-b7c0d77d05af1d8d.d: crates/apps/examples/sor_probe.rs

/root/repo/target/debug/examples/sor_probe-b7c0d77d05af1d8d: crates/apps/examples/sor_probe.rs

crates/apps/examples/sor_probe.rs:
