/root/repo/target/debug/examples/chaos_run-5565ccff21731955.d: examples/chaos_run.rs

/root/repo/target/debug/examples/chaos_run-5565ccff21731955: examples/chaos_run.rs

examples/chaos_run.rs:
