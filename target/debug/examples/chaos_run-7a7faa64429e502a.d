/root/repo/target/debug/examples/chaos_run-7a7faa64429e502a.d: examples/chaos_run.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_run-7a7faa64429e502a.rmeta: examples/chaos_run.rs Cargo.toml

examples/chaos_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
