/root/repo/target/debug/examples/tri_probe-114202347fd285a6.d: crates/apps/examples/tri_probe.rs Cargo.toml

/root/repo/target/debug/examples/libtri_probe-114202347fd285a6.rmeta: crates/apps/examples/tri_probe.rs Cargo.toml

crates/apps/examples/tri_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
