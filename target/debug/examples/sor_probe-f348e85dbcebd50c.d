/root/repo/target/debug/examples/sor_probe-f348e85dbcebd50c.d: crates/apps/examples/sor_probe.rs Cargo.toml

/root/repo/target/debug/examples/libsor_probe-f348e85dbcebd50c.rmeta: crates/apps/examples/sor_probe.rs Cargo.toml

crates/apps/examples/sor_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
