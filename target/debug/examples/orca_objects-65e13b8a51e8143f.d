/root/repo/target/debug/examples/orca_objects-65e13b8a51e8143f.d: examples/orca_objects.rs

/root/repo/target/debug/examples/orca_objects-65e13b8a51e8143f: examples/orca_objects.rs

examples/orca_objects.rs:
