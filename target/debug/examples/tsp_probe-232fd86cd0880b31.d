/root/repo/target/debug/examples/tsp_probe-232fd86cd0880b31.d: crates/apps/examples/tsp_probe.rs Cargo.toml

/root/repo/target/debug/examples/libtsp_probe-232fd86cd0880b31.rmeta: crates/apps/examples/tsp_probe.rs Cargo.toml

crates/apps/examples/tsp_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
