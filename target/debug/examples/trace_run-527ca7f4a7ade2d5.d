/root/repo/target/debug/examples/trace_run-527ca7f4a7ade2d5.d: examples/trace_run.rs

/root/repo/target/debug/examples/trace_run-527ca7f4a7ade2d5: examples/trace_run.rs

examples/trace_run.rs:
