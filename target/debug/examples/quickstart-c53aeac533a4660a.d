/root/repo/target/debug/examples/quickstart-c53aeac533a4660a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c53aeac533a4660a: examples/quickstart.rs

examples/quickstart.rs:
