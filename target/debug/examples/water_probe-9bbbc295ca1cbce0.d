/root/repo/target/debug/examples/water_probe-9bbbc295ca1cbce0.d: crates/apps/examples/water_probe.rs

/root/repo/target/debug/examples/water_probe-9bbbc295ca1cbce0: crates/apps/examples/water_probe.rs

crates/apps/examples/water_probe.rs:
