/root/repo/target/debug/examples/water_probe-98efba4380625871.d: crates/apps/examples/water_probe.rs Cargo.toml

/root/repo/target/debug/examples/libwater_probe-98efba4380625871.rmeta: crates/apps/examples/water_probe.rs Cargo.toml

crates/apps/examples/water_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
