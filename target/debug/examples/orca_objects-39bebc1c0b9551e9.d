/root/repo/target/debug/examples/orca_objects-39bebc1c0b9551e9.d: examples/orca_objects.rs Cargo.toml

/root/repo/target/debug/examples/liborca_objects-39bebc1c0b9551e9.rmeta: examples/orca_objects.rs Cargo.toml

examples/orca_objects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
