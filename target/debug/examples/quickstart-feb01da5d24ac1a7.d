/root/repo/target/debug/examples/quickstart-feb01da5d24ac1a7.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-feb01da5d24ac1a7.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
