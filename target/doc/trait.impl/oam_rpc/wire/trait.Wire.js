(function() {
    const implementors = Object.fromEntries([["oam_rpc",[]],["optimistic_active_messages",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[14,34]}