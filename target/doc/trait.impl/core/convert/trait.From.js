(function() {
    const implementors = Object.fromEntries([["oam_net",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;&amp;[<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u8.html\">u8</a>]&gt; for <a class=\"enum\" href=\"oam_net/packet/enum.PayloadBuf.html\" title=\"enum oam_net::packet::PayloadBuf\">PayloadBuf</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"struct\" href=\"https://doc.rust-lang.org/1.95.0/alloc/vec/struct.Vec.html\" title=\"struct alloc::vec::Vec\">Vec</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u8.html\">u8</a>&gt;&gt; for <a class=\"enum\" href=\"oam_net/packet/enum.PayloadBuf.html\" title=\"enum oam_net::packet::PayloadBuf\">PayloadBuf</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[900]}