(function() {
    const implementors = Object.fromEntries([["oam_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/alloc/global/trait.GlobalAlloc.html\" title=\"trait core::alloc::global::GlobalAlloc\">GlobalAlloc</a> for <a class=\"struct\" href=\"oam_sim/mem/struct.CountingAlloc.html\" title=\"struct oam_sim::mem::CountingAlloc\">CountingAlloc</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[325]}