(function() {
    const implementors = Object.fromEntries([["oam_model",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/accum/trait.Sum.html\" title=\"trait core::iter::traits::accum::Sum\">Sum</a> for <a class=\"struct\" href=\"oam_model/time/struct.Dur.html\" title=\"struct oam_model::time::Dur\">Dur</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[290]}