(function() {
    const implementors = Object.fromEntries([["oam_model",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a> for <a class=\"struct\" href=\"oam_model/time/struct.Dur.html\" title=\"struct oam_model::time::Dur\">Dur</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a>&lt;<a class=\"struct\" href=\"oam_model/time/struct.Dur.html\" title=\"struct oam_model::time::Dur\">Dur</a>&gt; for <a class=\"struct\" href=\"oam_model/time/struct.Time.html\" title=\"struct oam_model::time::Time\">Time</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[647]}