(function() {
    const implementors = Object.fromEntries([["oam_net",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.Deref.html\" title=\"trait core::ops::deref::Deref\">Deref</a> for <a class=\"enum\" href=\"oam_net/packet/enum.PayloadBuf.html\" title=\"enum oam_net::packet::PayloadBuf\">PayloadBuf</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[292]}