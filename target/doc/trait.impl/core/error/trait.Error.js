(function() {
    const implementors = Object.fromEntries([["oam_rpc",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"oam_rpc/wire/struct.WireError.html\" title=\"struct oam_rpc::wire::WireError\">WireError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[282]}