(function() {
    const implementors = Object.fromEntries([["oam_core",[["impl <a class=\"trait\" href=\"oam_am/handler/trait.PacketHandler.html\" title=\"trait oam_am::handler::PacketHandler\">PacketHandler</a> for <a class=\"struct\" href=\"oam_core/engine/struct.OptimisticEntry.html\" title=\"struct oam_core::engine::OptimisticEntry\">OptimisticEntry</a>",0],["impl <a class=\"trait\" href=\"oam_am/handler/trait.PacketHandler.html\" title=\"trait oam_am::handler::PacketHandler\">PacketHandler</a> for <a class=\"struct\" href=\"oam_core/engine/struct.ThreadedEntry.html\" title=\"struct oam_core::engine::ThreadedEntry\">ThreadedEntry</a>",0]]],["oam_core",[["impl PacketHandler for <a class=\"struct\" href=\"oam_core/engine/struct.OptimisticEntry.html\" title=\"struct oam_core::engine::OptimisticEntry\">OptimisticEntry</a>",0],["impl PacketHandler for <a class=\"struct\" href=\"oam_core/engine/struct.ThreadedEntry.html\" title=\"struct oam_core::engine::ThreadedEntry\">ThreadedEntry</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[592,355]}