/root/repo/target/release/examples/orca_objects-5138a39c208fd233.d: examples/orca_objects.rs Cargo.toml

/root/repo/target/release/examples/liborca_objects-5138a39c208fd233.rmeta: examples/orca_objects.rs Cargo.toml

examples/orca_objects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
