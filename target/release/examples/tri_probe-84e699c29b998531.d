/root/repo/target/release/examples/tri_probe-84e699c29b998531.d: crates/apps/examples/tri_probe.rs Cargo.toml

/root/repo/target/release/examples/libtri_probe-84e699c29b998531.rmeta: crates/apps/examples/tri_probe.rs Cargo.toml

crates/apps/examples/tri_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
