/root/repo/target/release/examples/paper_tour-530af6d392f6a485.d: examples/paper_tour.rs Cargo.toml

/root/repo/target/release/examples/libpaper_tour-530af6d392f6a485.rmeta: examples/paper_tour.rs Cargo.toml

examples/paper_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
