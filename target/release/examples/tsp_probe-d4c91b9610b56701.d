/root/repo/target/release/examples/tsp_probe-d4c91b9610b56701.d: crates/apps/examples/tsp_probe.rs Cargo.toml

/root/repo/target/release/examples/libtsp_probe-d4c91b9610b56701.rmeta: crates/apps/examples/tsp_probe.rs Cargo.toml

crates/apps/examples/tsp_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
