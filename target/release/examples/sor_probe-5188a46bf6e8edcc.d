/root/repo/target/release/examples/sor_probe-5188a46bf6e8edcc.d: crates/apps/examples/sor_probe.rs Cargo.toml

/root/repo/target/release/examples/libsor_probe-5188a46bf6e8edcc.rmeta: crates/apps/examples/sor_probe.rs Cargo.toml

crates/apps/examples/sor_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
