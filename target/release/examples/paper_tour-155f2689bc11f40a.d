/root/repo/target/release/examples/paper_tour-155f2689bc11f40a.d: examples/paper_tour.rs

/root/repo/target/release/examples/paper_tour-155f2689bc11f40a: examples/paper_tour.rs

examples/paper_tour.rs:
