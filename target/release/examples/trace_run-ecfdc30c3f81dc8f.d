/root/repo/target/release/examples/trace_run-ecfdc30c3f81dc8f.d: examples/trace_run.rs Cargo.toml

/root/repo/target/release/examples/libtrace_run-ecfdc30c3f81dc8f.rmeta: examples/trace_run.rs Cargo.toml

examples/trace_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
