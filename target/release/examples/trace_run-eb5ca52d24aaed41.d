/root/repo/target/release/examples/trace_run-eb5ca52d24aaed41.d: examples/trace_run.rs

/root/repo/target/release/examples/trace_run-eb5ca52d24aaed41: examples/trace_run.rs

examples/trace_run.rs:
