/root/repo/target/release/examples/water_probe-5fc122a9db34d74c.d: crates/apps/examples/water_probe.rs

/root/repo/target/release/examples/water_probe-5fc122a9db34d74c: crates/apps/examples/water_probe.rs

crates/apps/examples/water_probe.rs:
