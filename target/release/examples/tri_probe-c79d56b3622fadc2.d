/root/repo/target/release/examples/tri_probe-c79d56b3622fadc2.d: crates/apps/examples/tri_probe.rs

/root/repo/target/release/examples/tri_probe-c79d56b3622fadc2: crates/apps/examples/tri_probe.rs

crates/apps/examples/tri_probe.rs:
