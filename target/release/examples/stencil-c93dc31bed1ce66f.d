/root/repo/target/release/examples/stencil-c93dc31bed1ce66f.d: examples/stencil.rs

/root/repo/target/release/examples/stencil-c93dc31bed1ce66f: examples/stencil.rs

examples/stencil.rs:
