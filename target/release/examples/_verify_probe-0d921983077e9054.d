/root/repo/target/release/examples/_verify_probe-0d921983077e9054.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-0d921983077e9054: examples/_verify_probe.rs

examples/_verify_probe.rs:
