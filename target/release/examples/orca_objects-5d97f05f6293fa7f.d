/root/repo/target/release/examples/orca_objects-5d97f05f6293fa7f.d: examples/orca_objects.rs

/root/repo/target/release/examples/orca_objects-5d97f05f6293fa7f: examples/orca_objects.rs

examples/orca_objects.rs:
