/root/repo/target/release/examples/quickstart-a06007b2078a41d0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-a06007b2078a41d0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
