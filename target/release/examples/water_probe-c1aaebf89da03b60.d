/root/repo/target/release/examples/water_probe-c1aaebf89da03b60.d: crates/apps/examples/water_probe.rs Cargo.toml

/root/repo/target/release/examples/libwater_probe-c1aaebf89da03b60.rmeta: crates/apps/examples/water_probe.rs Cargo.toml

crates/apps/examples/water_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
