/root/repo/target/release/examples/tsp_probe-3d9807cdf7f263d8.d: crates/apps/examples/tsp_probe.rs

/root/repo/target/release/examples/tsp_probe-3d9807cdf7f263d8: crates/apps/examples/tsp_probe.rs

crates/apps/examples/tsp_probe.rs:
