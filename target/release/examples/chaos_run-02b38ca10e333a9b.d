/root/repo/target/release/examples/chaos_run-02b38ca10e333a9b.d: examples/chaos_run.rs Cargo.toml

/root/repo/target/release/examples/libchaos_run-02b38ca10e333a9b.rmeta: examples/chaos_run.rs Cargo.toml

examples/chaos_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
