/root/repo/target/release/examples/sor_probe-7c90f6f5839fb3c8.d: crates/apps/examples/sor_probe.rs

/root/repo/target/release/examples/sor_probe-7c90f6f5839fb3c8: crates/apps/examples/sor_probe.rs

crates/apps/examples/sor_probe.rs:
