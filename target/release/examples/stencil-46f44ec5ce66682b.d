/root/repo/target/release/examples/stencil-46f44ec5ce66682b.d: examples/stencil.rs Cargo.toml

/root/repo/target/release/examples/libstencil-46f44ec5ce66682b.rmeta: examples/stencil.rs Cargo.toml

examples/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
