/root/repo/target/release/examples/job_queue-92796561294a47e6.d: examples/job_queue.rs

/root/repo/target/release/examples/job_queue-92796561294a47e6: examples/job_queue.rs

examples/job_queue.rs:
