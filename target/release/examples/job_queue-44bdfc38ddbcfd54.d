/root/repo/target/release/examples/job_queue-44bdfc38ddbcfd54.d: examples/job_queue.rs Cargo.toml

/root/repo/target/release/examples/libjob_queue-44bdfc38ddbcfd54.rmeta: examples/job_queue.rs Cargo.toml

examples/job_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
