/root/repo/target/release/examples/chaos_run-9a7cc0da1eab276a.d: examples/chaos_run.rs

/root/repo/target/release/examples/chaos_run-9a7cc0da1eab276a: examples/chaos_run.rs

examples/chaos_run.rs:
