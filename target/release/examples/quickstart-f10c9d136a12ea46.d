/root/repo/target/release/examples/quickstart-f10c9d136a12ea46.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f10c9d136a12ea46: examples/quickstart.rs

examples/quickstart.rs:
