/root/repo/target/release/deps/ablate_abort_strategy-e504f5c764411e22.d: crates/bench/benches/ablate_abort_strategy.rs Cargo.toml

/root/repo/target/release/deps/libablate_abort_strategy-e504f5c764411e22.rmeta: crates/bench/benches/ablate_abort_strategy.rs Cargo.toml

crates/bench/benches/ablate_abort_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
