/root/repo/target/release/deps/criterion_micro-c37e3d3085c9c6d4.d: crates/bench/benches/criterion_micro.rs Cargo.toml

/root/repo/target/release/deps/libcriterion_micro-c37e3d3085c9c6d4.rmeta: crates/bench/benches/criterion_micro.rs Cargo.toml

crates/bench/benches/criterion_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
