/root/repo/target/release/deps/oam_apps-5d04cd06c9ad01c9.d: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs Cargo.toml

/root/repo/target/release/deps/liboam_apps-5d04cd06c9ad01c9.rmeta: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/sor/mod.rs:
crates/apps/src/sor/grid.rs:
crates/apps/src/sor/run.rs:
crates/apps/src/system.rs:
crates/apps/src/triangle/mod.rs:
crates/apps/src/triangle/board.rs:
crates/apps/src/triangle/run.rs:
crates/apps/src/tsp/mod.rs:
crates/apps/src/tsp/cities.rs:
crates/apps/src/tsp/run.rs:
crates/apps/src/water/mod.rs:
crates/apps/src/water/run.rs:
crates/apps/src/water/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
