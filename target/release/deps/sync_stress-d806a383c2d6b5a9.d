/root/repo/target/release/deps/sync_stress-d806a383c2d6b5a9.d: crates/threads/tests/sync_stress.rs Cargo.toml

/root/repo/target/release/deps/libsync_stress-d806a383c2d6b5a9.rmeta: crates/threads/tests/sync_stress.rs Cargo.toml

crates/threads/tests/sync_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
