/root/repo/target/release/deps/table1_null_rpc-6276395d442c6791.d: crates/bench/benches/table1_null_rpc.rs Cargo.toml

/root/repo/target/release/deps/libtable1_null_rpc-6276395d442c6791.rmeta: crates/bench/benches/table1_null_rpc.rs Cargo.toml

crates/bench/benches/table1_null_rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
