/root/repo/target/release/deps/fig4_water-fe523288173ad7de.d: crates/bench/benches/fig4_water.rs

/root/repo/target/release/deps/fig4_water-fe523288173ad7de: crates/bench/benches/fig4_water.rs

crates/bench/benches/fig4_water.rs:
