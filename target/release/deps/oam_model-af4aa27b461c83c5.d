/root/repo/target/release/deps/oam_model-af4aa27b461c83c5.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

/root/repo/target/release/deps/liboam_model-af4aa27b461c83c5.rlib: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

/root/repo/target/release/deps/liboam_model-af4aa27b461c83c5.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/fault.rs:
crates/model/src/ids.rs:
crates/model/src/stats.rs:
crates/model/src/time.rs:
crates/model/src/trace.rs:
