/root/repo/target/release/deps/properties-c03437cdeca730ad.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-c03437cdeca730ad.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
