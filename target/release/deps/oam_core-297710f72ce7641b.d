/root/repo/target/release/deps/oam_core-297710f72ce7641b.d: crates/core/src/lib.rs crates/core/src/engine.rs Cargo.toml

/root/repo/target/release/deps/liboam_core-297710f72ce7641b.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
