/root/repo/target/release/deps/oam_trace-7e9bd1769d844b35.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/release/deps/liboam_trace-7e9bd1769d844b35.rlib: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/release/deps/liboam_trace-7e9bd1769d844b35.rmeta: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
