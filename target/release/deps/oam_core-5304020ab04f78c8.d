/root/repo/target/release/deps/oam_core-5304020ab04f78c8.d: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/release/deps/liboam_core-5304020ab04f78c8.rlib: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/release/deps/liboam_core-5304020ab04f78c8.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
