/root/repo/target/release/deps/oam_core-c1868fcd9adda10b.d: crates/core/src/lib.rs crates/core/src/engine.rs Cargo.toml

/root/repo/target/release/deps/liboam_core-c1868fcd9adda10b.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
