/root/repo/target/release/deps/oam_objects-8be87ba499fcc91f.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs Cargo.toml

/root/repo/target/release/deps/liboam_objects-8be87ba499fcc91f.rmeta: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs Cargo.toml

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
