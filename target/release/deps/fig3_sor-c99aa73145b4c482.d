/root/repo/target/release/deps/fig3_sor-c99aa73145b4c482.d: crates/bench/benches/fig3_sor.rs Cargo.toml

/root/repo/target/release/deps/libfig3_sor-c99aa73145b4c482.rmeta: crates/bench/benches/fig3_sor.rs Cargo.toml

crates/bench/benches/fig3_sor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
