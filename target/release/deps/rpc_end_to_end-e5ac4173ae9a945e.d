/root/repo/target/release/deps/rpc_end_to_end-e5ac4173ae9a945e.d: crates/rpc/tests/rpc_end_to_end.rs

/root/repo/target/release/deps/rpc_end_to_end-e5ac4173ae9a945e: crates/rpc/tests/rpc_end_to_end.rs

crates/rpc/tests/rpc_end_to_end.rs:
