/root/repo/target/release/deps/oam_rpc-888ae39f4f38e94d.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/release/deps/oam_rpc-888ae39f4f38e94d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
