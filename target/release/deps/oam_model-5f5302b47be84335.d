/root/repo/target/release/deps/oam_model-5f5302b47be84335.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs Cargo.toml

/root/repo/target/release/deps/liboam_model-5f5302b47be84335.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/fault.rs:
crates/model/src/ids.rs:
crates/model/src/stats.rs:
crates/model/src/time.rs:
crates/model/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
