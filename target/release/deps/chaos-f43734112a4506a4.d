/root/repo/target/release/deps/chaos-f43734112a4506a4.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-f43734112a4506a4: tests/chaos.rs

tests/chaos.rs:
