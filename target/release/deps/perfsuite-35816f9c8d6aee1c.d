/root/repo/target/release/deps/perfsuite-35816f9c8d6aee1c.d: crates/bench/src/bin/perfsuite.rs

/root/repo/target/release/deps/perfsuite-35816f9c8d6aee1c: crates/bench/src/bin/perfsuite.rs

crates/bench/src/bin/perfsuite.rs:
