/root/repo/target/release/deps/chaos-ece766bd1c86c1ae.d: tests/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-ece766bd1c86c1ae.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
