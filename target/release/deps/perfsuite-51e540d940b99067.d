/root/repo/target/release/deps/perfsuite-51e540d940b99067.d: crates/bench/src/bin/perfsuite.rs

/root/repo/target/release/deps/perfsuite-51e540d940b99067: crates/bench/src/bin/perfsuite.rs

crates/bench/src/bin/perfsuite.rs:
