/root/repo/target/release/deps/fig2_tsp-858d885654a684dc.d: crates/bench/benches/fig2_tsp.rs Cargo.toml

/root/repo/target/release/deps/libfig2_tsp-858d885654a684dc.rmeta: crates/bench/benches/fig2_tsp.rs Cargo.toml

crates/bench/benches/fig2_tsp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
