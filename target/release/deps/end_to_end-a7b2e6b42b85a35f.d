/root/repo/target/release/deps/end_to_end-a7b2e6b42b85a35f.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-a7b2e6b42b85a35f: tests/end_to_end.rs

tests/end_to_end.rs:
