/root/repo/target/release/deps/oam_trace-261c17fbf8d0c11f.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs Cargo.toml

/root/repo/target/release/deps/liboam_trace-261c17fbf8d0c11f.rmeta: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
