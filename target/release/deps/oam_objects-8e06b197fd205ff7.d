/root/repo/target/release/deps/oam_objects-8e06b197fd205ff7.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/release/deps/liboam_objects-8e06b197fd205ff7.rlib: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/release/deps/liboam_objects-8e06b197fd205ff7.rmeta: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
