/root/repo/target/release/deps/rpc_end_to_end-9c47e5be65ed80f8.d: crates/rpc/tests/rpc_end_to_end.rs Cargo.toml

/root/repo/target/release/deps/librpc_end_to_end-9c47e5be65ed80f8.rmeta: crates/rpc/tests/rpc_end_to_end.rs Cargo.toml

crates/rpc/tests/rpc_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
