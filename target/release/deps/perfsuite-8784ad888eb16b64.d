/root/repo/target/release/deps/perfsuite-8784ad888eb16b64.d: crates/bench/src/bin/perfsuite.rs Cargo.toml

/root/repo/target/release/deps/libperfsuite-8784ad888eb16b64.rmeta: crates/bench/src/bin/perfsuite.rs Cargo.toml

crates/bench/src/bin/perfsuite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
