/root/repo/target/release/deps/fig4_water-ffcdd175fe4bdde7.d: crates/bench/benches/fig4_water.rs Cargo.toml

/root/repo/target/release/deps/libfig4_water-ffcdd175fe4bdde7.rmeta: crates/bench/benches/fig4_water.rs Cargo.toml

crates/bench/benches/fig4_water.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
