/root/repo/target/release/deps/table3_water_aborts-b29590673c281153.d: crates/bench/benches/table3_water_aborts.rs

/root/repo/target/release/deps/table3_water_aborts-b29590673c281153: crates/bench/benches/table3_water_aborts.rs

crates/bench/benches/table3_water_aborts.rs:
