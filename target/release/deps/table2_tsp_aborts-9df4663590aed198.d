/root/repo/target/release/deps/table2_tsp_aborts-9df4663590aed198.d: crates/bench/benches/table2_tsp_aborts.rs

/root/repo/target/release/deps/table2_tsp_aborts-9df4663590aed198: crates/bench/benches/table2_tsp_aborts.rs

crates/bench/benches/table2_tsp_aborts.rs:
