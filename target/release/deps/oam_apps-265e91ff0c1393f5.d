/root/repo/target/release/deps/oam_apps-265e91ff0c1393f5.d: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

/root/repo/target/release/deps/oam_apps-265e91ff0c1393f5: crates/apps/src/lib.rs crates/apps/src/sor/mod.rs crates/apps/src/sor/grid.rs crates/apps/src/sor/run.rs crates/apps/src/system.rs crates/apps/src/triangle/mod.rs crates/apps/src/triangle/board.rs crates/apps/src/triangle/run.rs crates/apps/src/tsp/mod.rs crates/apps/src/tsp/cities.rs crates/apps/src/tsp/run.rs crates/apps/src/water/mod.rs crates/apps/src/water/run.rs crates/apps/src/water/sim.rs

crates/apps/src/lib.rs:
crates/apps/src/sor/mod.rs:
crates/apps/src/sor/grid.rs:
crates/apps/src/sor/run.rs:
crates/apps/src/system.rs:
crates/apps/src/triangle/mod.rs:
crates/apps/src/triangle/board.rs:
crates/apps/src/triangle/run.rs:
crates/apps/src/tsp/mod.rs:
crates/apps/src/tsp/cities.rs:
crates/apps/src/tsp/run.rs:
crates/apps/src/water/mod.rs:
crates/apps/src/water/run.rs:
crates/apps/src/water/sim.rs:
