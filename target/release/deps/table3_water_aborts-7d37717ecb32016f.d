/root/repo/target/release/deps/table3_water_aborts-7d37717ecb32016f.d: crates/bench/benches/table3_water_aborts.rs Cargo.toml

/root/repo/target/release/deps/libtable3_water_aborts-7d37717ecb32016f.rmeta: crates/bench/benches/table3_water_aborts.rs Cargo.toml

crates/bench/benches/table3_water_aborts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
