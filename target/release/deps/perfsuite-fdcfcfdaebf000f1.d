/root/repo/target/release/deps/perfsuite-fdcfcfdaebf000f1.d: crates/bench/src/bin/perfsuite.rs Cargo.toml

/root/repo/target/release/deps/libperfsuite-fdcfcfdaebf000f1.rmeta: crates/bench/src/bin/perfsuite.rs Cargo.toml

crates/bench/src/bin/perfsuite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
