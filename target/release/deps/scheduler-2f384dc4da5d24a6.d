/root/repo/target/release/deps/scheduler-2f384dc4da5d24a6.d: crates/threads/tests/scheduler.rs Cargo.toml

/root/repo/target/release/deps/libscheduler-2f384dc4da5d24a6.rmeta: crates/threads/tests/scheduler.rs Cargo.toml

crates/threads/tests/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
