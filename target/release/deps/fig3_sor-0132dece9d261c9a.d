/root/repo/target/release/deps/fig3_sor-0132dece9d261c9a.d: crates/bench/benches/fig3_sor.rs

/root/repo/target/release/deps/fig3_sor-0132dece9d261c9a: crates/bench/benches/fig3_sor.rs

crates/bench/benches/fig3_sor.rs:
