/root/repo/target/release/deps/objects-4f9dac3f6da535ba.d: crates/objects/tests/objects.rs

/root/repo/target/release/deps/objects-4f9dac3f6da535ba: crates/objects/tests/objects.rs

crates/objects/tests/objects.rs:
