/root/repo/target/release/deps/ablate_buffering-2023c363724e8643.d: crates/bench/benches/ablate_buffering.rs Cargo.toml

/root/repo/target/release/deps/libablate_buffering-2023c363724e8643.rmeta: crates/bench/benches/ablate_buffering.rs Cargo.toml

crates/bench/benches/ablate_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
