/root/repo/target/release/deps/properties-7d5229f162945c74.d: tests/properties.rs

/root/repo/target/release/deps/properties-7d5229f162945c74: tests/properties.rs

tests/properties.rs:
