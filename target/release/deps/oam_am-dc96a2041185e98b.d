/root/repo/target/release/deps/oam_am-dc96a2041185e98b.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/release/deps/liboam_am-dc96a2041185e98b.rlib: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/release/deps/liboam_am-dc96a2041185e98b.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
