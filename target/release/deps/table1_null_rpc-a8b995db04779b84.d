/root/repo/target/release/deps/table1_null_rpc-a8b995db04779b84.d: crates/bench/benches/table1_null_rpc.rs

/root/repo/target/release/deps/table1_null_rpc-a8b995db04779b84: crates/bench/benches/table1_null_rpc.rs

crates/bench/benches/table1_null_rpc.rs:
