/root/repo/target/release/deps/objects-cfbbe0cff699a8e6.d: crates/objects/tests/objects.rs Cargo.toml

/root/repo/target/release/deps/libobjects-cfbbe0cff699a8e6.rmeta: crates/objects/tests/objects.rs Cargo.toml

crates/objects/tests/objects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
