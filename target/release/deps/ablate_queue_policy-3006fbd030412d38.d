/root/repo/target/release/deps/ablate_queue_policy-3006fbd030412d38.d: crates/bench/benches/ablate_queue_policy.rs Cargo.toml

/root/repo/target/release/deps/libablate_queue_policy-3006fbd030412d38.rmeta: crates/bench/benches/ablate_queue_policy.rs Cargo.toml

crates/bench/benches/ablate_queue_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
