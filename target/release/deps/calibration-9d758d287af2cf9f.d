/root/repo/target/release/deps/calibration-9d758d287af2cf9f.d: crates/bench/tests/calibration.rs Cargo.toml

/root/repo/target/release/deps/libcalibration-9d758d287af2cf9f.rmeta: crates/bench/tests/calibration.rs Cargo.toml

crates/bench/tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
