/root/repo/target/release/deps/oam_sim-bbb4ff7c674b7b17.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/release/deps/liboam_sim-bbb4ff7c674b7b17.rlib: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/release/deps/liboam_sim-bbb4ff7c674b7b17.rmeta: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
