/root/repo/target/release/deps/ablate_handler_budget-a07382b532644c84.d: crates/bench/benches/ablate_handler_budget.rs

/root/repo/target/release/deps/ablate_handler_budget-a07382b532644c84: crates/bench/benches/ablate_handler_budget.rs

crates/bench/benches/ablate_handler_budget.rs:
