/root/repo/target/release/deps/ablate_handler_budget-96cc89e94b4fed09.d: crates/bench/benches/ablate_handler_budget.rs Cargo.toml

/root/repo/target/release/deps/libablate_handler_budget-96cc89e94b4fed09.rmeta: crates/bench/benches/ablate_handler_budget.rs Cargo.toml

crates/bench/benches/ablate_handler_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
