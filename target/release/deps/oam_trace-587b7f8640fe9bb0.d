/root/repo/target/release/deps/oam_trace-587b7f8640fe9bb0.d: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

/root/repo/target/release/deps/oam_trace-587b7f8640fe9bb0: crates/trace/src/lib.rs crates/trace/src/export.rs crates/trace/src/recorder.rs

crates/trace/src/lib.rs:
crates/trace/src/export.rs:
crates/trace/src/recorder.rs:
