/root/repo/target/release/deps/ablate_abort_strategy-b35dd4e2bb53280e.d: crates/bench/benches/ablate_abort_strategy.rs

/root/repo/target/release/deps/ablate_abort_strategy-b35dd4e2bb53280e: crates/bench/benches/ablate_abort_strategy.rs

crates/bench/benches/ablate_abort_strategy.rs:
