/root/repo/target/release/deps/fig1_triangle-e1170d26a453dda2.d: crates/bench/benches/fig1_triangle.rs

/root/repo/target/release/deps/fig1_triangle-e1170d26a453dda2: crates/bench/benches/fig1_triangle.rs

crates/bench/benches/fig1_triangle.rs:
