/root/repo/target/release/deps/oam_machine-0d1ff9400f47b727.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/release/deps/oam_machine-0d1ff9400f47b727: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
