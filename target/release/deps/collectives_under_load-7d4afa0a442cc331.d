/root/repo/target/release/deps/collectives_under_load-7d4afa0a442cc331.d: crates/machine/tests/collectives_under_load.rs Cargo.toml

/root/repo/target/release/deps/libcollectives_under_load-7d4afa0a442cc331.rmeta: crates/machine/tests/collectives_under_load.rs Cargo.toml

crates/machine/tests/collectives_under_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
