/root/repo/target/release/deps/collectives_under_load-847ae219bd17382c.d: crates/machine/tests/collectives_under_load.rs

/root/repo/target/release/deps/collectives_under_load-847ae219bd17382c: crates/machine/tests/collectives_under_load.rs

crates/machine/tests/collectives_under_load.rs:
