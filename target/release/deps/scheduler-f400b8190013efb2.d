/root/repo/target/release/deps/scheduler-f400b8190013efb2.d: crates/threads/tests/scheduler.rs

/root/repo/target/release/deps/scheduler-f400b8190013efb2: crates/threads/tests/scheduler.rs

crates/threads/tests/scheduler.rs:
