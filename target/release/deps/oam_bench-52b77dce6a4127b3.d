/root/repo/target/release/deps/oam_bench-52b77dce6a4127b3.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/release/deps/liboam_bench-52b77dce6a4127b3.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/release/deps/liboam_bench-52b77dce6a4127b3.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
