/root/repo/target/release/deps/network_edge_cases-35dfb2c8ca57316c.d: crates/net/tests/network_edge_cases.rs

/root/repo/target/release/deps/network_edge_cases-35dfb2c8ca57316c: crates/net/tests/network_edge_cases.rs

crates/net/tests/network_edge_cases.rs:
