/root/repo/target/release/deps/nested_and_bulk-1802a66e3fbb988b.d: crates/rpc/tests/nested_and_bulk.rs Cargo.toml

/root/repo/target/release/deps/libnested_and_bulk-1802a66e3fbb988b.rmeta: crates/rpc/tests/nested_and_bulk.rs Cargo.toml

crates/rpc/tests/nested_and_bulk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
