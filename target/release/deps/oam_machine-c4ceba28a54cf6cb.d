/root/repo/target/release/deps/oam_machine-c4ceba28a54cf6cb.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs Cargo.toml

/root/repo/target/release/deps/liboam_machine-c4ceba28a54cf6cb.rmeta: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
