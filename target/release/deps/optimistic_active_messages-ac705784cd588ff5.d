/root/repo/target/release/deps/optimistic_active_messages-ac705784cd588ff5.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/liboptimistic_active_messages-ac705784cd588ff5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
