/root/repo/target/release/deps/oam_rpc-b1423eeac48cd7bd.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/release/deps/liboam_rpc-b1423eeac48cd7bd.rlib: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

/root/repo/target/release/deps/liboam_rpc-b1423eeac48cd7bd.rmeta: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
