/root/repo/target/release/deps/oam_am-e009258f73a522fd.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

/root/repo/target/release/deps/oam_am-e009258f73a522fd: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
