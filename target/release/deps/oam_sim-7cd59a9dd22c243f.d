/root/repo/target/release/deps/oam_sim-7cd59a9dd22c243f.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs Cargo.toml

/root/repo/target/release/deps/liboam_sim-7cd59a9dd22c243f.rmeta: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
