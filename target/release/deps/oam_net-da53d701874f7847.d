/root/repo/target/release/deps/oam_net-da53d701874f7847.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/release/deps/liboam_net-da53d701874f7847.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/release/deps/liboam_net-da53d701874f7847.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
