/root/repo/target/release/deps/fig1_triangle-45cbf22d0f5e3761.d: crates/bench/benches/fig1_triangle.rs Cargo.toml

/root/repo/target/release/deps/libfig1_triangle-45cbf22d0f5e3761.rmeta: crates/bench/benches/fig1_triangle.rs Cargo.toml

crates/bench/benches/fig1_triangle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
