/root/repo/target/release/deps/oam_threads-210784533218ea3d.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs Cargo.toml

/root/repo/target/release/deps/liboam_threads-210784533218ea3d.rmeta: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs Cargo.toml

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
