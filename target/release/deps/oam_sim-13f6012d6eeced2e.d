/root/repo/target/release/deps/oam_sim-13f6012d6eeced2e.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs Cargo.toml

/root/repo/target/release/deps/liboam_sim-13f6012d6eeced2e.rmeta: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
