/root/repo/target/release/deps/oam_objects-c889e56b688a1801.d: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

/root/repo/target/release/deps/oam_objects-c889e56b688a1801: crates/objects/src/lib.rs crates/objects/src/class.rs crates/objects/src/layer.rs

crates/objects/src/lib.rs:
crates/objects/src/class.rs:
crates/objects/src/layer.rs:
