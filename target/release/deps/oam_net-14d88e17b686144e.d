/root/repo/target/release/deps/oam_net-14d88e17b686144e.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs Cargo.toml

/root/repo/target/release/deps/liboam_net-14d88e17b686144e.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
