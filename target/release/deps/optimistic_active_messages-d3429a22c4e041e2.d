/root/repo/target/release/deps/optimistic_active_messages-d3429a22c4e041e2.d: src/lib.rs

/root/repo/target/release/deps/liboptimistic_active_messages-d3429a22c4e041e2.rlib: src/lib.rs

/root/repo/target/release/deps/liboptimistic_active_messages-d3429a22c4e041e2.rmeta: src/lib.rs

src/lib.rs:
