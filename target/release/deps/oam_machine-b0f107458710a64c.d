/root/repo/target/release/deps/oam_machine-b0f107458710a64c.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/release/deps/liboam_machine-b0f107458710a64c.rlib: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

/root/repo/target/release/deps/liboam_machine-b0f107458710a64c.rmeta: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
