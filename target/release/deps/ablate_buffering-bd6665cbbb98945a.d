/root/repo/target/release/deps/ablate_buffering-bd6665cbbb98945a.d: crates/bench/benches/ablate_buffering.rs

/root/repo/target/release/deps/ablate_buffering-bd6665cbbb98945a: crates/bench/benches/ablate_buffering.rs

crates/bench/benches/ablate_buffering.rs:
