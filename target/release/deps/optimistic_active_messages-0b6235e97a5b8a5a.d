/root/repo/target/release/deps/optimistic_active_messages-0b6235e97a5b8a5a.d: src/lib.rs

/root/repo/target/release/deps/optimistic_active_messages-0b6235e97a5b8a5a: src/lib.rs

src/lib.rs:
