/root/repo/target/release/deps/determinism_golden-d4915e939c39dfec.d: tests/determinism_golden.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism_golden-d4915e939c39dfec.rmeta: tests/determinism_golden.rs Cargo.toml

tests/determinism_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
