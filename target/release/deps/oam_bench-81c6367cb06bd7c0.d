/root/repo/target/release/deps/oam_bench-81c6367cb06bd7c0.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/release/deps/liboam_bench-81c6367cb06bd7c0.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
