/root/repo/target/release/deps/oam_threads-00b0e7edd08c3dc8.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/release/deps/oam_threads-00b0e7edd08c3dc8: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
