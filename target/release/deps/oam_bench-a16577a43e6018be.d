/root/repo/target/release/deps/oam_bench-a16577a43e6018be.d: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

/root/repo/target/release/deps/oam_bench-a16577a43e6018be: crates/bench/src/lib.rs crates/bench/src/micro.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
