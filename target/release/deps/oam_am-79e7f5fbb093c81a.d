/root/repo/target/release/deps/oam_am-79e7f5fbb093c81a.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

/root/repo/target/release/deps/liboam_am-79e7f5fbb093c81a.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
