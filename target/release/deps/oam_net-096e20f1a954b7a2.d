/root/repo/target/release/deps/oam_net-096e20f1a954b7a2.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs Cargo.toml

/root/repo/target/release/deps/liboam_net-096e20f1a954b7a2.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
