/root/repo/target/release/deps/oam_net-fcd04efbfe6feb63.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

/root/repo/target/release/deps/oam_net-fcd04efbfe6feb63: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/packet.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/packet.rs:
