/root/repo/target/release/deps/ablate_queue_policy-72ad4fcb7616c8f1.d: crates/bench/benches/ablate_queue_policy.rs

/root/repo/target/release/deps/ablate_queue_policy-72ad4fcb7616c8f1: crates/bench/benches/ablate_queue_policy.rs

crates/bench/benches/ablate_queue_policy.rs:
