/root/repo/target/release/deps/oam_machine-7abb4c380b02c148.d: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs Cargo.toml

/root/repo/target/release/deps/liboam_machine-7abb4c380b02c148.rmeta: crates/machine/src/lib.rs crates/machine/src/collective.rs crates/machine/src/machine.rs crates/machine/src/watchdog.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collective.rs:
crates/machine/src/machine.rs:
crates/machine/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
