/root/repo/target/release/deps/sync_stress-219cfd5d34ac25b9.d: crates/threads/tests/sync_stress.rs

/root/repo/target/release/deps/sync_stress-219cfd5d34ac25b9: crates/threads/tests/sync_stress.rs

crates/threads/tests/sync_stress.rs:
