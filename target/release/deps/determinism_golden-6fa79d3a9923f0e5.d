/root/repo/target/release/deps/determinism_golden-6fa79d3a9923f0e5.d: tests/determinism_golden.rs

/root/repo/target/release/deps/determinism_golden-6fa79d3a9923f0e5: tests/determinism_golden.rs

tests/determinism_golden.rs:
