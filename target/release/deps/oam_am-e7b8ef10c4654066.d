/root/repo/target/release/deps/oam_am-e7b8ef10c4654066.d: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

/root/repo/target/release/deps/liboam_am-e7b8ef10c4654066.rmeta: crates/am/src/lib.rs crates/am/src/handler.rs crates/am/src/layer.rs Cargo.toml

crates/am/src/lib.rs:
crates/am/src/handler.rs:
crates/am/src/layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
