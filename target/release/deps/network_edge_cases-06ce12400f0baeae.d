/root/repo/target/release/deps/network_edge_cases-06ce12400f0baeae.d: crates/net/tests/network_edge_cases.rs Cargo.toml

/root/repo/target/release/deps/libnetwork_edge_cases-06ce12400f0baeae.rmeta: crates/net/tests/network_edge_cases.rs Cargo.toml

crates/net/tests/network_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
