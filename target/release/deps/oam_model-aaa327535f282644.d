/root/repo/target/release/deps/oam_model-aaa327535f282644.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

/root/repo/target/release/deps/oam_model-aaa327535f282644: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/fault.rs crates/model/src/ids.rs crates/model/src/stats.rs crates/model/src/time.rs crates/model/src/trace.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/fault.rs:
crates/model/src/ids.rs:
crates/model/src/stats.rs:
crates/model/src/time.rs:
crates/model/src/trace.rs:
