/root/repo/target/release/deps/fig2_tsp-0b13043821831504.d: crates/bench/benches/fig2_tsp.rs

/root/repo/target/release/deps/fig2_tsp-0b13043821831504: crates/bench/benches/fig2_tsp.rs

crates/bench/benches/fig2_tsp.rs:
