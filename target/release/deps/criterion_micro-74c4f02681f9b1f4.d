/root/repo/target/release/deps/criterion_micro-74c4f02681f9b1f4.d: crates/bench/benches/criterion_micro.rs

/root/repo/target/release/deps/criterion_micro-74c4f02681f9b1f4: crates/bench/benches/criterion_micro.rs

crates/bench/benches/criterion_micro.rs:
