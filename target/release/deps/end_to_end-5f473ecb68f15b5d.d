/root/repo/target/release/deps/end_to_end-5f473ecb68f15b5d.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-5f473ecb68f15b5d.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
