/root/repo/target/release/deps/table2_tsp_aborts-a3825b612f3af41d.d: crates/bench/benches/table2_tsp_aborts.rs Cargo.toml

/root/repo/target/release/deps/libtable2_tsp_aborts-a3825b612f3af41d.rmeta: crates/bench/benches/table2_tsp_aborts.rs Cargo.toml

crates/bench/benches/table2_tsp_aborts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
