/root/repo/target/release/deps/oam_core-1d3cf5daddb3bc50.d: crates/core/src/lib.rs crates/core/src/engine.rs

/root/repo/target/release/deps/oam_core-1d3cf5daddb3bc50: crates/core/src/lib.rs crates/core/src/engine.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
