/root/repo/target/release/deps/nested_and_bulk-df78b9f1ca449421.d: crates/rpc/tests/nested_and_bulk.rs

/root/repo/target/release/deps/nested_and_bulk-df78b9f1ca449421: crates/rpc/tests/nested_and_bulk.rs

crates/rpc/tests/nested_and_bulk.rs:
