/root/repo/target/release/deps/fig_bulk_transfer-98259ae5d7ac2c57.d: crates/bench/benches/fig_bulk_transfer.rs

/root/repo/target/release/deps/fig_bulk_transfer-98259ae5d7ac2c57: crates/bench/benches/fig_bulk_transfer.rs

crates/bench/benches/fig_bulk_transfer.rs:
