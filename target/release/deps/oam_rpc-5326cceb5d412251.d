/root/repo/target/release/deps/oam_rpc-5326cceb5d412251.d: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs Cargo.toml

/root/repo/target/release/deps/liboam_rpc-5326cceb5d412251.rmeta: crates/rpc/src/lib.rs crates/rpc/src/macros.rs crates/rpc/src/runtime.rs crates/rpc/src/wire.rs Cargo.toml

crates/rpc/src/lib.rs:
crates/rpc/src/macros.rs:
crates/rpc/src/runtime.rs:
crates/rpc/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
