/root/repo/target/release/deps/oam_threads-f4323b13f18e2fa1.d: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/release/deps/liboam_threads-f4323b13f18e2fa1.rlib: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

/root/repo/target/release/deps/liboam_threads-f4323b13f18e2fa1.rmeta: crates/threads/src/lib.rs crates/threads/src/node.rs crates/threads/src/sched.rs crates/threads/src/sync.rs

crates/threads/src/lib.rs:
crates/threads/src/node.rs:
crates/threads/src/sched.rs:
crates/threads/src/sync.rs:
