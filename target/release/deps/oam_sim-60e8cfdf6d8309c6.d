/root/repo/target/release/deps/oam_sim-60e8cfdf6d8309c6.d: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

/root/repo/target/release/deps/oam_sim-60e8cfdf6d8309c6: crates/sim/src/lib.rs crates/sim/src/calq.rs crates/sim/src/executor.rs crates/sim/src/mem.rs crates/sim/src/rng.rs crates/sim/src/timer.rs

crates/sim/src/lib.rs:
crates/sim/src/calq.rs:
crates/sim/src/executor.rs:
crates/sim/src/mem.rs:
crates/sim/src/rng.rs:
crates/sim/src/timer.rs:
