/root/repo/target/release/deps/fig_bulk_transfer-887c0206d1f5fffe.d: crates/bench/benches/fig_bulk_transfer.rs Cargo.toml

/root/repo/target/release/deps/libfig_bulk_transfer-887c0206d1f5fffe.rmeta: crates/bench/benches/fig_bulk_transfer.rs Cargo.toml

crates/bench/benches/fig_bulk_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
