/root/repo/target/release/deps/calibration-4456ba557ebf49a5.d: crates/bench/tests/calibration.rs

/root/repo/target/release/deps/calibration-4456ba557ebf49a5: crates/bench/tests/calibration.rs

crates/bench/tests/calibration.rs:
