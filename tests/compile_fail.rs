//! The session-typestate compile-fail suite: out-of-order session
//! operations must be *compile errors*, not runtime surprises. Each case
//! is a tiny binary in the detached `tests/compile-fail` fixture package;
//! this driver runs `cargo check` on it and asserts the diagnostic the
//! typestate is designed to produce. A control case proves the harness
//! isn't vacuously failing everything.
//!
//! No external dependency (trybuild &c.) — the whole dependency tree is
//! path-local, so a plain offline `cargo check` is enough.

use std::path::PathBuf;
use std::process::Command;

/// `cargo check` one fixture bin; returns (compiled?, stderr).
fn check(case: &str) -> (bool, String) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO"))
        .arg("check")
        .arg("--quiet")
        .arg("--offline")
        .arg("--manifest-path")
        .arg(root.join("tests/compile-fail/Cargo.toml"))
        .arg("--bin")
        .arg(case)
        // A dedicated target dir: the fixture must never contend for the
        // workspace build lock held by the very test run driving it.
        .env("CARGO_TARGET_DIR", root.join("target/compile-fail"))
        .output()
        .expect("spawn cargo check");
    (out.status.success(), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn the_control_case_compiles() {
    let (ok, stderr) = check("control_stream_ok");
    assert!(ok, "a well-formed stream service and client must compile:\n{stderr}");
}

#[test]
fn out_of_order_session_operations_are_compile_errors() {
    // (fixture bin, expected rustc diagnostic)
    let cases = [
        ("chunk_after_close", "E0382"),
        ("double_close", "E0382"),
        ("body_without_close", "E0308"),
        ("next_after_finish", "E0382"),
        ("finish_after_cancel", "E0382"),
    ];
    for (case, code) in cases {
        let (ok, stderr) = check(case);
        assert!(!ok, "{case} must be rejected by the type system");
        assert!(
            stderr.contains(code),
            "{case}: expected the typestate to produce {code}, got:\n{stderr}"
        );
    }
}
