//! Session-layer integration tests: streaming replies, pipelined calls,
//! client-side cancellation, and per-call priorities — the protocol
//! features layered over the single-shot RPC wire format. Exercised
//! through the meta-crate's public API like any user program.

use std::cell::RefCell;
use std::rc::Rc;

use optimistic_active_messages::prelude::*;

/// Per-node test-service state.
pub struct SessState {
    /// Completion order observed by `mark` (dispatch-priority test).
    pub order: RefCell<Vec<u32>>,
    /// Held by the server main to park `enter` calls (admission test).
    pub gate: Mutex<()>,
}

define_rpc_service! {
    /// Streaming / pipelining / priority test service.
    service Sess {
        state SessState;

        /// Echo with a fixed service time — the pipelining workload.
        rpc work(ctx, st, x: u64) -> u64 {
            let _ = st;
            ctx.charge(Dur::from_micros(40)).await;
            x * 2
        }

        /// Record the dispatch order of concurrent arrivals.
        rpc mark(ctx, st, tag: u32) -> u32 {
            let _ = ctx;
            st.order.borrow_mut().push(tag);
            tag
        }

        /// Block on the gate the server main holds, then reply.
        rpc enter(ctx, st) -> u32 {
            let _g = st.gate.lock().await;
            ctx.charge(Dur::from_micros(1)).await;
            7
        }

        /// Bounded stream: chunk `0..n`, close with the sum.
        stream count(ctx, st, tx, n: u64) [u64] -> u64 {
            let _ = st;
            let mut tx = tx;
            let mut sum = 0u64;
            for i in 0..n {
                ctx.charge(Dur::from_micros(2)).await;
                sum += i;
                tx = tx.send(&i).await;
            }
            tx.close(&sum).await
        }

        /// Effectively unbounded stream: chunks until a client cancel (or
        /// the end of the world) stops it.
        stream ticks(ctx, st, tx) [u64] -> u64 {
            let _ = st;
            let mut tx = tx;
            let mut i = 0u64;
            loop {
                ctx.charge(Dur::from_micros(5)).await;
                tx = tx.send(&i).await;
                i += 1;
                if i == u64::MAX {
                    break tx.close(&i).await;
                }
            }
        }
    }
}

fn build(nodes: usize, cfg: MachineConfig, mode: RpcMode) -> Machine {
    let machine = MachineBuilder::from_config(cfg).build();
    for node in machine.nodes() {
        let st = Rc::new(SessState { order: RefCell::new(Vec::new()), gate: Mutex::new(node, ()) });
        Sess::register_all(machine.rpc(), node.id(), st, mode);
    }
    assert_eq!(machine.nodes().len(), nodes);
    machine
}

#[test]
fn stream_methods_deliver_chunks_in_order_then_the_final_reply() {
    for mode in [RpcMode::Orpc, RpcMode::Trpc] {
        let machine = build(2, MachineConfig::cm5(2), mode);
        let report = machine.run(|env| async move {
            if env.id().index() == 1 {
                let mut h = Sess::count::call(env.rpc(), env.node(), NodeId(0), 16).await;
                let mut got = Vec::new();
                while let Some(x) = h.next().await {
                    got.push(x);
                }
                assert_eq!(got, (0..16).collect::<Vec<u64>>(), "{mode:?}");
                let fin = h.finish().await.expect("close arrives");
                assert_eq!(fin, (0..16).sum::<u64>(), "{mode:?}");
            }
            env.barrier().await;
        });
        let t = report.stats.total();
        assert_eq!(t.sessions_opened, 1, "{mode:?}");
        assert_eq!(t.sessions_closed, 1, "{mode:?}");
        assert_eq!(t.sessions_cancelled, 0, "{mode:?}");
        assert_eq!(t.chunks_received, 16, "{mode:?}");
        assert_eq!(t.orphan_chunks, 0, "{mode:?}");
        let m = t.per_method.get(&Sess::count::ID.0).expect("stream method counted");
        assert_eq!(m.chunks, 16, "server side counted every chunk ({mode:?})");
    }
}

#[test]
fn a_dropped_stream_handle_counts_as_a_cancel_not_a_close() {
    let machine = build(2, MachineConfig::cm5(2), RpcMode::Orpc);
    let report = machine.run(|env| async move {
        if env.id().index() == 1 {
            let mut h = Sess::count::call(env.rpc(), env.node(), NodeId(0), 4).await;
            let first = h.next().await;
            assert_eq!(first, Some(0));
            drop(h); // walk away mid-stream
        }
        env.barrier().await;
    });
    let t = report.stats.total();
    assert_eq!(t.sessions_opened, 1);
    assert_eq!(t.sessions_closed, 0);
    assert_eq!(t.sessions_cancelled, 1, "drop retires the session as a cancel");
}

#[test]
fn pipelined_calls_overlap_the_round_trip_with_server_execution() {
    const CALLS: u64 = 8;
    let sync_run = || {
        let machine = build(2, MachineConfig::cm5(2), RpcMode::Orpc);
        machine
            .run(|env| async move {
                if env.id().index() == 1 {
                    for i in 0..CALLS {
                        let r = Sess::work::call(env.rpc(), env.node(), NodeId(0), i)
                            .await
                            .expect("reply decode");
                        assert_eq!(r, i * 2);
                    }
                }
                env.barrier().await;
            })
            .end_time
    };
    let piped_run = || {
        let machine = build(2, MachineConfig::cm5(2), RpcMode::Orpc);
        machine
            .run(|env| async move {
                if env.id().index() == 1 {
                    let mut handles = Vec::new();
                    for i in 0..CALLS {
                        handles.push(Sess::work::issue(env.rpc(), env.node(), NodeId(0), i).await);
                    }
                    for (i, h) in handles.into_iter().enumerate() {
                        let r = h.wait().await.expect("reply decode");
                        assert_eq!(r, i as u64 * 2);
                    }
                }
                env.barrier().await;
            })
            .end_time
    };
    let sync = sync_run();
    let piped = piped_run();
    assert!(
        piped < sync,
        "pipelined issues ({piped:?}) must beat call-and-wait ({sync:?}): the \
         marshal + round trip of call N+1 overlaps the service time of call N"
    );
    // Determinism: re-running either schedule reproduces its clock exactly.
    assert_eq!(sync, sync_run());
    assert_eq!(piped, piped_run());
}

#[test]
fn cancelling_a_stream_aborts_the_server_side_handler() {
    let machine = build(2, MachineConfig::cm5(2), RpcMode::Orpc);
    let report = machine.run(|env| async move {
        if env.id().index() == 1 {
            let mut h = Sess::ticks::call(env.rpc(), env.node(), NodeId(0)).await;
            for want in 0..3u64 {
                assert_eq!(h.next().await, Some(want));
            }
            h.cancel();
            // The handler would stream forever: only the cancel frame lets
            // this run reach quiescence at all.
        }
        env.barrier().await;
    });
    let t = report.stats.total();
    assert_eq!(t.sessions_opened, 1);
    assert_eq!(t.sessions_closed, 0, "no Close was ever sent");
    assert_eq!(t.sessions_cancelled, 1);
    let m = t.per_method.get(&Sess::ticks::ID.0).expect("stream method counted");
    assert_eq!(m.cancels, 1, "the in-flight handler was aborted by the cancel frame");
    assert!(m.chunks >= 3, "it streamed at least what the client consumed");
}

#[test]
fn high_priority_arrivals_dispatch_first_under_trpc() {
    // Three clients fire one call each so all three requests sit in the
    // server's input queue when it finally polls; TRPC spawns a thread per
    // request at the priority's queue position, so the lone High call runs
    // before the two Lows that arrived ahead of it.
    let cfg = MachineConfig::cm5(4).with_admission(AdmissionConfig::default());
    let machine = MachineBuilder::from_config(cfg).build();
    let states: Vec<Rc<SessState>> = machine
        .nodes()
        .iter()
        .map(|node| {
            Rc::new(SessState { order: RefCell::new(Vec::new()), gate: Mutex::new(node, ()) })
        })
        .collect();
    for (node, st) in machine.nodes().iter().zip(&states) {
        Sess::register_all(machine.rpc(), node.id(), Rc::clone(st), RpcMode::Trpc);
    }
    let states = Rc::new(states);
    let st = Rc::clone(&states);
    machine.run(move |env| {
        let st = Rc::clone(&st);
        async move {
            let me = env.id().index();
            env.barrier().await;
            if me == 0 {
                // Stay busy while the requests pile up, then serve.
                env.charge(Dur::from_micros(300)).await;
                while st[0].order.borrow().len() < 3 {
                    env.poll().await;
                }
            } else {
                let prio = if me == 3 { Priority::High } else { Priority::Low };
                let opts = CallOpts::default().with_priority(prio);
                let r = Sess::mark::call_with(env.rpc(), env.node(), NodeId(0), opts, me as u32)
                    .await
                    .expect("reply decode");
                assert_eq!(r, me as u32);
            }
            env.barrier().await;
        }
    });
    let order = states[0].order.borrow().clone();
    assert_eq!(order.len(), 3);
    assert_eq!(order[0], 3, "the High call jumps the queue, order was {order:?}");
    assert_eq!(&order[1..], &[1, 2], "the Lows keep their arrival order");
}

#[test]
fn admission_sheds_low_priority_calls_first() {
    // A budget of 2 pending calls scales to 3 for High and 1 for Low. The
    // server parks every `enter` on a held gate, the client floods it with
    // six pipelined calls, and the NACK counts tell the story: every call
    // still completes (NACKed calls back off and retry after the gate
    // opens), but Low gets shed strictly more often than High.
    let shed_with = |prio: Priority| {
        let cfg = MachineConfig::cm5(2)
            .with_admission(AdmissionConfig { pending_budget: 2, ..Default::default() });
        let machine = MachineBuilder::from_config(cfg).build();
        let states: Vec<Rc<SessState>> = machine
            .nodes()
            .iter()
            .map(|node| {
                Rc::new(SessState { order: RefCell::new(Vec::new()), gate: Mutex::new(node, ()) })
            })
            .collect();
        for (node, st) in machine.nodes().iter().zip(&states) {
            Sess::register_all(machine.rpc(), node.id(), Rc::clone(st), RpcMode::Orpc);
        }
        let states = Rc::new(states);
        let st = Rc::clone(&states);
        let report = machine.run(move |env| {
            let st = Rc::clone(&st);
            async move {
                if env.id().index() == 0 {
                    let g = st[0].gate.lock().await;
                    env.barrier().await;
                    // Hold the gate long enough for all six to arrive.
                    env.charge(Dur::from_micros(500)).await;
                    env.poll().await;
                    drop(g);
                } else {
                    env.barrier().await;
                    let opts = CallOpts::default().with_priority(prio);
                    let mut handles = Vec::new();
                    for _ in 0..6 {
                        handles.push(
                            Sess::enter::issue_with(env.rpc(), env.node(), NodeId(0), opts).await,
                        );
                    }
                    for h in handles {
                        assert_eq!(h.wait().await.expect("reply decode"), 7, "{prio:?}");
                    }
                }
                env.barrier().await;
            }
        });
        report.stats.total().calls_shed
    };
    let high = shed_with(Priority::High);
    let low = shed_with(Priority::Low);
    assert!(high >= 1, "even High overflows a budget of 3, got {high}");
    assert!(
        low > high,
        "Low (budget 1) must be shed more than High (budget 3): low={low} high={high}"
    );
}

#[test]
fn session_runs_are_deterministic_across_backends_and_shards() {
    // The streaming protocol must not disturb the machine's determinism
    // story: the same program over sim and native backends, at one and
    // several shards, lands on the same virtual clock and counters.
    let run_once = || {
        let machine = build(3, MachineConfig::cm5(3), RpcMode::Orpc);
        let report = machine.run(|env| async move {
            if env.id().index() != 0 {
                let mut h = Sess::count::call(env.rpc(), env.node(), NodeId(0), 8).await;
                let mut acc = 0u64;
                while let Some(x) = h.next().await {
                    acc += x;
                }
                let fin = h.finish().await.expect("close arrives");
                assert_eq!(acc, fin);
            }
            env.barrier().await;
        });
        (report.end_time, report.events, report.stats)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "identical per-node statistics, counter for counter");
}
