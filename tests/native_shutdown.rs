//! Native-backend shutdown: every node OS thread must join promptly on
//! clean completion *and* when a handler or main hangs forever — the
//! real-time watchdog stops the run, the shutdown broadcast wakes threads
//! parked on their channels, and the per-node thread state comes back in
//! a [`HangReport`](optimistic_active_messages::machine::HangReport).

use std::time::{Duration, Instant};

use optimistic_active_messages::apps::sor::{self, SorParams};
use optimistic_active_messages::apps::System;
use optimistic_active_messages::machine::{try_run_native, HangKind, ShardApp};
use optimistic_active_messages::prelude::*;

/// Clean completion: the run returns (all threads joined — `try_run_native`
/// scopes them) well inside the watchdog budget, with nothing pending.
#[test]
fn clean_completion_joins_promptly() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    let start = Instant::now();
    let out =
        sor::run_configured(System::Orpc, MachineConfig::cm5(4).with_backend(Backend::Native), p);
    // The modeled compute here is a few ms of real pacing; anything near
    // the 30 s default budget means shutdown leaked or stalled.
    assert!(start.elapsed() < Duration::from_secs(10), "clean shutdown took {:?}", start.elapsed());
    assert_eq!(out.answer, ck);
}

/// A deliberately hung main: node 1 spins on a flag nobody ever sets. The
/// watchdog must stop the run at its real-time budget, join every thread,
/// and report per-node state identifying the stuck node.
#[test]
fn hung_main_is_diagnosed_and_joined_within_budget() {
    let cfg = MachineConfig::cm5(2).with_backend(Backend::Native);
    let budget = Time::from_nanos(250_000_000); // 250 ms real
    let start = Instant::now();
    let result = try_run_native(cfg, budget, |_machine| ShardApp {
        main: Box::new(|env: NodeEnv| {
            Box::pin(async move {
                if env.id().index() == 1 {
                    let never = Flag::new();
                    env.node().spin_on(never).await;
                }
            })
        }),
        finish: Box::new(|_| 0u64),
    });
    let elapsed = start.elapsed();
    let hang = result.expect_err("a hung main must produce a HangReport");

    assert_eq!(hang.kind, HangKind::BudgetExceeded);
    assert!(elapsed >= Duration::from_millis(250), "stopped before the budget: {elapsed:?}");
    // Prompt: budget + shutdown/join slack, nowhere near a second park-
    // timeout-per-node pile-up.
    assert!(elapsed < Duration::from_secs(5), "threads took {elapsed:?} to join");

    assert_eq!(hang.nodes.len(), 2, "one snapshot per node");
    assert!(hang.nodes[0].main_done, "node 0's main completed");
    assert!(!hang.nodes[1].main_done, "node 1 is the stuck node");
    assert_eq!(hang.stuck_nodes().count(), 1);
    assert!(
        hang.nodes[1].diag.live_threads > 0,
        "the hung thread is still alive in node 1's scheduler: {:?}",
        hang.nodes[1].diag
    );
    let shown = hang.to_string();
    assert!(shown.contains("budget-exceeded"), "display names the kind: {shown}");
}

/// A successful run through the explicit-budget API: barriers and a
/// cross-node reduction complete over real channels, the answer is exact,
/// and the generous budget never fires.
#[test]
fn explicit_budget_does_not_disturb_a_completing_run() {
    use std::cell::Cell;
    use std::rc::Rc;

    let nodes = 4usize;
    let cfg = MachineConfig::cm5(nodes).with_backend(Backend::Native);
    let (report, answer) = try_run_native(cfg, Time::from_nanos(20_000_000_000), |machine| {
        let sum = Reducer::new(machine.collectives(), |a: &u64, b: &u64| a + b);
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        ShardApp {
            main: Box::new(move |env: NodeEnv| {
                let sum = sum.clone();
                let out = Rc::clone(&out2);
                Box::pin(async move {
                    let me = env.id().index() as u64;
                    env.barrier().await;
                    let total = sum.reduce(env.node(), me + 1).await;
                    if me == 0 {
                        out.set(total);
                    }
                    env.barrier().await;
                })
            }),
            finish: Box::new(move |_| out.get()),
        }
    })
    .expect("run completes well inside the budget");
    assert!(report.completed);
    let n = nodes as u64;
    assert_eq!(answer, n * (n + 1) / 2, "reduction over real channels is exact");
}
