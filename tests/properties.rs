//! Property-based tests over the core data structures and invariants.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use proptest::prelude::*;

use optimistic_active_messages::model::{Dur, MachineConfig, NodeId, NodeStats, Time};
use optimistic_active_messages::net::{NetConfig, Network, Packet};
use optimistic_active_messages::rpc::{from_bytes, to_bytes};
use optimistic_active_messages::sim::Sim;
use optimistic_active_messages::threads::{Mutex, Node};
use optimistic_active_messages::apps::triangle::Board;

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn wire_roundtrips_scalars(a: u64, b: i32, c: f64, d: bool) {
        let v = (a, b, c, d);
        let back: (u64, i32, f64, bool) = from_bytes(&to_bytes(&v)).unwrap();
        // NaN-safe comparison via bits.
        prop_assert_eq!(back.0, v.0);
        prop_assert_eq!(back.1, v.1);
        prop_assert_eq!(back.2.to_bits(), v.2.to_bits());
        prop_assert_eq!(back.3, v.3);
    }

    #[test]
    fn wire_roundtrips_containers(v: Vec<(u32, Option<u16>)>, s: String) {
        let payload = (v.clone(), s.clone());
        let back: (Vec<(u32, Option<u16>)>, String) = from_bytes(&to_bytes(&payload)).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn wire_rejects_arbitrary_truncation(v: Vec<u64>, cut_frac in 0.0f64..1.0) {
        let bytes = to_bytes(&v);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let r: Result<Vec<u64>, _> = from_bytes(&bytes[..cut]);
            prop_assert!(r.is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Simulation core
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn events_fire_once_in_nondecreasing_time_order(delays in proptest::collection::vec(0u64..10_000, 1..64)) {
        let sim = Sim::new(1);
        let fired: Rc<RefCell<Vec<(usize, Time)>>> = Rc::default();
        for (i, d) in delays.iter().enumerate() {
            let f = fired.clone();
            sim.schedule_after(Dur::from_nanos(*d), move |s| f.borrow_mut().push((i, s.now())));
        }
        sim.run();
        let log = fired.borrow();
        prop_assert_eq!(log.len(), delays.len(), "each event exactly once");
        prop_assert!(log.windows(2).all(|w| w[0].1 <= w[1].1), "time order");
        // Firing times equal the scheduled delays.
        for (i, t) in log.iter() {
            prop_assert_eq!(t.as_nanos(), delays[*i]);
        }
    }

    #[test]
    fn same_seed_same_trace(seed: u64, delays in proptest::collection::vec(1u64..5_000, 1..24)) {
        let run = |seed: u64| {
            let sim = Sim::new(seed);
            for d in &delays {
                let jitter = sim.with_rng(|r| {
                    use rand::Rng;
                    r.gen_range(0..100u64)
                });
                sim.schedule_after(Dur::from_nanos(*d + jitter), |_| {});
            }
            (sim.run(), sim.events_executed())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

// ---------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any traffic pattern, any (valid) capacities: every packet is
    /// delivered exactly once, and packets between a given (src, dst)
    /// pair arrive in FIFO order. (Cross-source order at one destination
    /// is not guaranteed — links pump independently.)
    #[test]
    fn network_delivers_exactly_once_in_order(
        sends in proptest::collection::vec((0usize..4, 0usize..4, 0usize..8), 1..100),
        out_cap in 1usize..6,
        in_cap in 1usize..6,
        fabric in 1usize..8,
    ) {
        let sim = Sim::new(9);
        let mut cfg = NetConfig::from_machine(&MachineConfig::cm5(4));
        cfg.ni_out_capacity = out_cap;
        cfg.ni_in_capacity = in_cap;
        cfg.fabric_capacity = fabric;
        let stats: Vec<_> = (0..4).map(|_| Rc::new(RefCell::new(NodeStats::new()))).collect();
        let net = Network::new(&sim, cfg, stats);
        let mut accepted: Vec<Vec<u32>> = vec![Vec::new(); 16]; // per (src,dst) tags in send order
        let mut delivered: Vec<Vec<u32>> = vec![Vec::new(); 16];
        let drain = |delivered: &mut Vec<Vec<u32>>| {
            let mut n_drained = 0;
            for n in 0..4 {
                while let Some(p) = net.poll(NodeId(n)) {
                    delivered[p.src.index() * 4 + n].push(p.tag);
                    n_drained += 1;
                }
            }
            n_drained
        };
        // (`seq` tags packets; it is not an index into `sends`.)
        let mut seq = 0u32;
        #[allow(clippy::explicit_counter_loop)]
        for (src, dst, len) in &sends {
            let pkt = Packet::short(NodeId(*src), NodeId(*dst), seq, vec![0u8; *len]);
            // Retry until accepted, draining receivers to make space.
            loop {
                match net.try_inject(pkt.clone()) {
                    Ok(()) => {
                        accepted[*src * 4 + *dst].push(seq);
                        break;
                    }
                    Err(_) => {
                        sim.run();
                        drain(&mut delivered);
                    }
                }
            }
            seq += 1;
        }
        // Drain everything.
        loop {
            sim.run();
            if drain(&mut delivered) == 0 && net.in_flight() == 0 {
                break;
            }
        }
        for pair in 0..16 {
            prop_assert_eq!(
                &delivered[pair],
                &accepted[pair],
                "pair src={} dst={}: exactly-once FIFO",
                pair / 4,
                pair % 4
            );
        }
        prop_assert_eq!(net.in_flight(), 0);
    }
}

// ---------------------------------------------------------------------
// Thread package
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mutual exclusion holds under arbitrary charge patterns: a critical
    /// counter never sees concurrent entry, and every thread completes.
    #[test]
    fn mutex_guarantees_mutual_exclusion(charges in proptest::collection::vec(0u64..40, 2..12)) {
        let sim = Sim::new(3);
        let cfg = Rc::new(MachineConfig::cm5(1));
        let stats = Rc::new(RefCell::new(NodeStats::new()));
        let node = Node::new(&sim, NodeId(0), 1, cfg, stats);
        let m = Mutex::new(&node, ());
        let inside = Rc::new(Cell::new(0u32));
        let max_inside = Rc::new(Cell::new(0u32));
        let completed = Rc::new(Cell::new(0usize));
        for us in charges.clone() {
            let (m, node2) = (m.clone(), node.clone());
            let (i, mx, c) = (inside.clone(), max_inside.clone(), completed.clone());
            node.spawn(async move {
                node2.charge(Dur::from_micros(us / 2)).await;
                let _g = m.lock().await;
                i.set(i.get() + 1);
                mx.set(mx.get().max(i.get()));
                node2.charge(Dur::from_micros(us)).await;
                node2.yield_now().await;
                i.set(i.get() - 1);
                c.set(c.get() + 1);
            });
        }
        sim.run();
        prop_assert_eq!(completed.get(), charges.len(), "all threads finish");
        prop_assert_eq!(max_inside.get(), 1, "never two inside the critical section");
    }
}

// ---------------------------------------------------------------------
// Application substrate invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn triangle_jumps_are_reversible(size in 4usize..=7, moves in proptest::collection::vec(0usize..200, 0..12)) {
        let board = Board::new(size);
        let mut pos = board.initial();
        for pick in moves {
            let mut succs = Vec::new();
            board.for_each_successor(pos, |s| succs.push(s));
            if succs.is_empty() {
                break;
            }
            let next = succs[pick % succs.len()];
            // Peg count decreases by exactly one per jump.
            prop_assert_eq!(Board::pegs(next), Board::pegs(pos) - 1);
            // The reverse jump exists from the successor's perspective:
            // un-jumping restores the position (jumps come in mirrored
            // pairs over the same line of three).
            pos = next;
        }
    }

    #[test]
    fn sor_partition_is_exact_for_any_shape(rows in 1usize..600, p in 1usize..129) {
        prop_assume!(p <= rows);
        use optimistic_active_messages::apps::sor::partition;
        let mut total = 0;
        let mut prev_end = 0;
        for i in 0..p {
            let (a, b) = partition(rows, p, i);
            prop_assert_eq!(a, prev_end, "contiguous");
            prop_assert!(b > a, "non-empty");
            total += b - a;
            prev_end = b;
        }
        prop_assert_eq!(total, rows);
    }

    #[test]
    fn water_half_shell_covers_each_pair_once(p in 2usize..40) {
        use optimistic_active_messages::apps::water::targets;
        let mut seen = std::collections::HashSet::new();
        for a in 0..p {
            for b in targets(a, p) {
                prop_assert!(seen.insert((a.min(b), a.max(b))));
            }
        }
        prop_assert_eq!(seen.len(), p * (p - 1) / 2);
    }
}
