//! Randomized property tests over the core data structures and invariants.
//!
//! These used to run under an external property-testing framework; they now
//! drive the same invariants from the repo's own deterministic [`Prng`], so
//! the whole suite builds offline and every failure is reproducible from
//! the case seed printed in the assertion message.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use optimistic_active_messages::apps::service::{self, ServiceParams};
use optimistic_active_messages::apps::triangle::Board;
use optimistic_active_messages::machine::MachineBuilder;
use optimistic_active_messages::model::{Dur, MachineConfig, NodeId, NodeStats, Time};
use optimistic_active_messages::net::{BufPool, NetConfig, Network, Packet, PayloadBuf};
use optimistic_active_messages::rpc::{define_rpc_service, from_bytes, to_bytes, to_payload};
use optimistic_active_messages::sim::{Prng, Sim};
use optimistic_active_messages::threads::{Mutex, Node};

/// Run `case` once per seed with an independent generator. The seed is the
/// case number, so a failing case replays exactly.
fn for_cases(cases: u64, mut case: impl FnMut(u64, &mut Prng)) {
    for c in 0..cases {
        let mut rng = Prng::seed_from_u64(0xBA5E ^ c.wrapping_mul(0x9E37_79B9));
        case(c, &mut rng);
    }
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

#[test]
fn wire_roundtrips_scalars() {
    for_cases(256, |case, r| {
        let v = (r.next_u64(), r.next_u64() as i32, f64::from_bits(r.next_u64()), r.gen_bool(0.5));
        let back: (u64, i32, f64, bool) = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back.0, v.0, "case {case}");
        assert_eq!(back.1, v.1, "case {case}");
        // NaN-safe comparison via bits.
        assert_eq!(back.2.to_bits(), v.2.to_bits(), "case {case}");
        assert_eq!(back.3, v.3, "case {case}");
    });
}

#[test]
fn wire_roundtrips_containers() {
    for_cases(128, |case, r| {
        let v: Vec<(u32, Option<u16>)> = (0..r.gen_below(20))
            .map(|_| {
                let opt = if r.gen_bool(0.5) { Some(r.next_u64() as u16) } else { None };
                (r.next_u64() as u32, opt)
            })
            .collect();
        let s: String =
            (0..r.gen_below(32)).map(|_| char::from(b'a' + r.gen_below(26) as u8)).collect();
        let payload = (v, s);
        let back: (Vec<(u32, Option<u16>)>, String) = from_bytes(&to_bytes(&payload)).unwrap();
        assert_eq!(back, payload, "case {case}");
    });
}

#[test]
fn wire_rejects_arbitrary_truncation() {
    for_cases(128, |case, r| {
        let v: Vec<u64> = (0..r.gen_below(16)).map(|_| r.next_u64()).collect();
        let bytes = to_bytes(&v);
        let cut = ((bytes.len() as f64) * r.gen_f64()) as usize;
        if cut < bytes.len() {
            let back: Result<Vec<u64>, _> = from_bytes(&bytes[..cut]);
            assert!(back.is_err(), "case {case}: truncated decode at {cut} succeeded");
        }
    });
}

// ---------------------------------------------------------------------
// Payload buffers and the pool
// ---------------------------------------------------------------------

/// Exact sizes straddling the inline/heap boundary (`SHORT_PAYLOAD_MAX` =
/// 16), plus a bulk-sized buffer.
const BOUNDARY_SIZES: [usize; 5] = [0, 15, 16, 17, 4096];

#[test]
fn payload_roundtrips_across_the_inline_boundary() {
    let pool = BufPool::new();
    for n in BOUNDARY_SIZES {
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        // Through the pooled wire writer (length-prefixed encoding)...
        let p = to_payload(&data, &pool);
        let back: Vec<u8> = from_bytes(p.as_slice()).unwrap();
        assert_eq!(back, data, "wire roundtrip, len {n}");
        // ...and through both raw representations directly.
        let raw = if n <= optimistic_active_messages::net::SHORT_PAYLOAD_MAX {
            PayloadBuf::inline(&data)
        } else {
            PayloadBuf::heap(data.clone())
        };
        assert_eq!(raw.as_slice(), &data[..], "raw payload, len {n}");
        assert_eq!(&*raw.view_from(0), &data[..], "zero-copy view, len {n}");
        // Sharing is by reference: a clone reads the same bytes.
        assert_eq!(raw.clone().as_slice(), raw.as_slice(), "clone, len {n}");
    }
}

/// Recycling a pooled buffer must never hand out storage that a live
/// payload still reads. Payloads (and `Rc`-shared clones of them) are
/// created and dropped in random order; after every operation each
/// survivor must still read back exactly its own bytes. In debug builds
/// reclaimed storage is poisoned with a sentinel, so any alias shows up as
/// a byte mismatch here.
#[test]
fn pool_recycling_never_aliases_a_live_payload() {
    for_cases(64, |case, r| {
        let pool = BufPool::new();
        let mut live: Vec<(PayloadBuf, Vec<u8>)> = Vec::new();
        for step in 0..200u64 {
            if r.gen_bool(0.6) || live.is_empty() {
                let n = 17 + r.gen_below(200) as usize;
                let fill = (step % 251) as u8;
                let mut buf = pool.lease(n);
                buf.resize(n, fill);
                let p = pool.wrap(buf);
                let expect = vec![fill; n];
                if r.gen_bool(0.5) {
                    live.push((p.clone(), expect.clone()));
                }
                live.push((p, expect));
            } else {
                let i = r.gen_below(live.len() as u64) as usize;
                live.swap_remove(i); // last Rc drop reclaims into the pool
            }
            for (p, expect) in &live {
                assert_eq!(p.as_slice(), &expect[..], "case {case} step {step}: aliased");
            }
        }
        assert!(pool.stats().reuses > 0, "case {case}: recycling was actually exercised");
    });
}

/// State for the [`Echo`] test service.
pub struct EchoState;

define_rpc_service! {
    /// Round-trips its argument, whatever transport the size selects.
    service Echo {
        state EchoState;

        /// Return the payload unchanged.
        rpc echo(ctx, st, data: Vec<u8>) -> Vec<u8> {
            let _ = (ctx, st);
            data
        }
    }
}

/// End-to-end echo across the short-AM/bulk-transfer boundary: the stub
/// picks the transport by size, and every boundary size must come back
/// bit-identical through marshaling, pooled buffers, and dispatch.
#[test]
fn echo_rpc_roundtrips_across_the_short_bulk_boundary() {
    let machine = MachineBuilder::from_config(MachineConfig::cm5(2)).build();
    for i in 0..2 {
        Echo::register_all(
            machine.rpc(),
            NodeId(i),
            Rc::new(EchoState),
            optimistic_active_messages::rpc::RpcMode::Orpc,
        );
    }
    machine.run(|env| async move {
        if env.id().index() == 0 {
            for n in BOUNDARY_SIZES {
                let data: Vec<u8> = (0..n).map(|i| (i.wrapping_mul(37) % 256) as u8).collect();
                let back = Echo::echo::call(env.rpc(), env.node(), NodeId(1), data.clone())
                    .await
                    .expect("reply decode");
                assert_eq!(back, data, "echo len {n}");
            }
        }
        env.barrier().await;
    });
}

// ---------------------------------------------------------------------
// Simulation core
// ---------------------------------------------------------------------

#[test]
fn events_fire_once_in_nondecreasing_time_order() {
    for_cases(64, |case, r| {
        let delays: Vec<u64> = (0..1 + r.gen_below(63)).map(|_| r.gen_below(10_000)).collect();
        let sim = Sim::new(1);
        let fired: Rc<RefCell<Vec<(usize, Time)>>> = Rc::default();
        for (i, d) in delays.iter().enumerate() {
            let f = fired.clone();
            sim.schedule_after(Dur::from_nanos(*d), move |s| f.borrow_mut().push((i, s.now())));
        }
        sim.run();
        let log = fired.borrow();
        assert_eq!(log.len(), delays.len(), "case {case}: each event exactly once");
        assert!(log.windows(2).all(|w| w[0].1 <= w[1].1), "case {case}: time order");
        // Firing times equal the scheduled delays.
        for (i, t) in log.iter() {
            assert_eq!(t.as_nanos(), delays[*i], "case {case}");
        }
    });
}

#[test]
fn same_seed_same_trace() {
    for_cases(64, |case, r| {
        let seed = r.next_u64();
        let delays: Vec<u64> = (0..1 + r.gen_below(23)).map(|_| 1 + r.gen_below(4_999)).collect();
        let run = |seed: u64| {
            let sim = Sim::new(seed);
            for d in &delays {
                let jitter = sim.with_rng(|r| r.gen_below(100));
                sim.schedule_after(Dur::from_nanos(*d + jitter), |_| {});
            }
            (sim.run(), sim.events_executed())
        };
        assert_eq!(run(seed), run(seed), "case {case}");
    });
}

// ---------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------

/// Any traffic pattern, any (valid) capacities: every packet is delivered
/// exactly once, and packets between a given (src, dst) pair arrive in
/// FIFO order. (Cross-source order at one destination is not guaranteed —
/// links pump independently.)
#[test]
fn network_delivers_exactly_once_in_order() {
    for_cases(48, |case, r| {
        let sends: Vec<(usize, usize, usize)> = (0..1 + r.gen_below(99))
            .map(|_| (r.gen_below(4) as usize, r.gen_below(4) as usize, r.gen_below(8) as usize))
            .collect();
        let sim = Sim::new(9);
        let mut cfg = NetConfig::from_machine(&MachineConfig::cm5(4));
        cfg.ni_out_capacity = 1 + r.gen_below(5) as usize;
        cfg.ni_in_capacity = 1 + r.gen_below(5) as usize;
        cfg.fabric_capacity = 1 + r.gen_below(7) as usize;
        let stats: Vec<_> = (0..4).map(|_| Rc::new(RefCell::new(NodeStats::new()))).collect();
        let net = Network::new(&sim, cfg, stats);
        let mut accepted: Vec<Vec<u32>> = vec![Vec::new(); 16]; // per (src,dst) tags in send order
        let mut delivered: Vec<Vec<u32>> = vec![Vec::new(); 16];
        let drain = |delivered: &mut Vec<Vec<u32>>| {
            let mut n_drained = 0;
            for n in 0..4 {
                while let Some(p) = net.poll(NodeId(n)) {
                    delivered[p.src.index() * 4 + n].push(p.tag);
                    n_drained += 1;
                }
            }
            n_drained
        };
        // (`seq` tags packets; it is not an index into `sends`.)
        for (seq, (src, dst, len)) in sends.iter().enumerate() {
            let pkt = Packet::short(NodeId(*src), NodeId(*dst), seq as u32, vec![0u8; *len]);
            // Retry until accepted, draining receivers to make space.
            loop {
                match net.try_inject(pkt.clone()) {
                    Ok(()) => {
                        accepted[*src * 4 + *dst].push(seq as u32);
                        break;
                    }
                    Err(_) => {
                        sim.run();
                        drain(&mut delivered);
                    }
                }
            }
        }
        // Drain everything.
        loop {
            sim.run();
            if drain(&mut delivered) == 0 && net.in_flight() == 0 {
                break;
            }
        }
        for pair in 0..16 {
            assert_eq!(
                delivered[pair],
                accepted[pair],
                "case {case} pair src={} dst={}: exactly-once FIFO",
                pair / 4,
                pair % 4
            );
        }
        assert_eq!(net.in_flight(), 0, "case {case}");
    });
}

// ---------------------------------------------------------------------
// Thread package
// ---------------------------------------------------------------------

/// Mutual exclusion holds under arbitrary charge patterns: a critical
/// counter never sees concurrent entry, and every thread completes.
#[test]
fn mutex_guarantees_mutual_exclusion() {
    for_cases(32, |case, r| {
        let charges: Vec<u64> = (0..2 + r.gen_below(10)).map(|_| r.gen_below(40)).collect();
        let sim = Sim::new(3);
        let cfg = Rc::new(MachineConfig::cm5(1));
        let stats = Rc::new(RefCell::new(NodeStats::new()));
        let node = Node::new(&sim, NodeId(0), 1, cfg, stats);
        let m = Mutex::new(&node, ());
        let inside = Rc::new(Cell::new(0u32));
        let max_inside = Rc::new(Cell::new(0u32));
        let completed = Rc::new(Cell::new(0usize));
        for us in charges.clone() {
            let (m, node2) = (m.clone(), node.clone());
            let (i, mx, c) = (inside.clone(), max_inside.clone(), completed.clone());
            node.spawn(async move {
                node2.charge(Dur::from_micros(us / 2)).await;
                let _g = m.lock().await;
                i.set(i.get() + 1);
                mx.set(mx.get().max(i.get()));
                node2.charge(Dur::from_micros(us)).await;
                node2.yield_now().await;
                i.set(i.get() - 1);
                c.set(c.get() + 1);
            });
        }
        sim.run();
        assert_eq!(completed.get(), charges.len(), "case {case}: all threads finish");
        assert_eq!(max_inside.get(), 1, "case {case}: never two inside the critical section");
    });
}

// ---------------------------------------------------------------------
// Application substrate invariants
// ---------------------------------------------------------------------

#[test]
fn triangle_jumps_are_reversible() {
    for_cases(256, |case, r| {
        let size = 4 + r.gen_below(4) as usize;
        let moves: Vec<usize> = (0..r.gen_below(12)).map(|_| r.gen_below(200) as usize).collect();
        let board = Board::new(size);
        let mut pos = board.initial();
        for pick in moves {
            let mut succs = Vec::new();
            board.for_each_successor(pos, |s| succs.push(s));
            if succs.is_empty() {
                break;
            }
            let next = succs[pick % succs.len()];
            // Peg count decreases by exactly one per jump.
            assert_eq!(Board::pegs(next), Board::pegs(pos) - 1, "case {case}");
            pos = next;
        }
    });
}

#[test]
fn sor_partition_is_exact_for_any_shape() {
    use optimistic_active_messages::apps::sor::partition;
    for_cases(256, |case, r| {
        let rows = 1 + r.gen_below(599) as usize;
        let p = 1 + r.gen_below(128) as usize;
        if p > rows {
            return;
        }
        let mut total = 0;
        let mut prev_end = 0;
        for i in 0..p {
            let (a, b) = partition(rows, p, i);
            assert_eq!(a, prev_end, "case {case}: contiguous");
            assert!(b > a, "case {case}: non-empty");
            total += b - a;
            prev_end = b;
        }
        assert_eq!(total, rows, "case {case}");
    });
}

#[test]
fn water_half_shell_covers_each_pair_once() {
    use optimistic_active_messages::apps::water::targets;
    for p in 2usize..40 {
        let mut seen = std::collections::HashSet::new();
        for a in 0..p {
            for b in targets(a, p) {
                assert!(seen.insert((a.min(b), a.max(b))), "p={p}");
            }
        }
        assert_eq!(seen.len(), p * (p - 1) / 2, "p={p}");
    }
}

// ---------------------------------------------------------------------
// Calendar queue (the executor's event queue)
// ---------------------------------------------------------------------

/// The calendar queue must dequeue in exactly the order a
/// `BinaryHeap<Reverse<(Time, seq)>>` would — the executor's determinism
/// rests on the two being interchangeable. The workload mixes heavy ties
/// (equal times, distinct seqs), small steps inside one calendar day,
/// mid-range steps across days, and jumps far beyond the wheel horizon
/// (`NBUCKETS << DAY_SHIFT` ns) so near-wheel, current-bucket merge, and
/// far-heap paths are all exercised, with pushes interleaved among pops.
#[test]
fn calendar_queue_matches_binary_heap_order() {
    use optimistic_active_messages::sim::calq::{CalendarQueue, Entry, DAY_SHIFT, NBUCKETS};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let horizon = (NBUCKETS as u64) << DAY_SHIFT;
    for_cases(48, |case, r| {
        let mut cq = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // `now` mirrors the executor clock: pushes are clamped to it, so the
        // queue never sees a time earlier than the last pop.
        let mut now = 0u64;
        let ops = 300 + r.gen_below(300);
        for _ in 0..ops {
            if r.gen_bool(0.6) || heap.is_empty() {
                let t = match r.gen_below(8) {
                    0..=2 => now,                                // exact ties
                    3..=4 => now + r.gen_below(1 << DAY_SHIFT),  // same day
                    5..=6 => now + r.gen_below(64 << DAY_SHIFT), // across days
                    _ => now + horizon + r.gen_below(horizon),   // beyond horizon
                };
                cq.push(Entry { t: Time::from_nanos(t), seq, slot: 0, gen: 0 });
                heap.push(Reverse((Time::from_nanos(t), seq)));
                seq += 1;
            } else {
                if r.gen_bool(0.25) {
                    let p = cq.peek().map(|e| (e.t, e.seq));
                    assert_eq!(p, heap.peek().map(|Reverse(k)| *k), "case {case}: peek");
                }
                let a = cq.pop().map(|e| (e.t, e.seq));
                let b = heap.pop().map(|Reverse(k)| k);
                assert_eq!(a, b, "case {case}: pop");
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
            assert_eq!(cq.len(), heap.len(), "case {case}: len");
        }
        // Drain both completely; the tails must agree entry for entry.
        loop {
            let a = cq.pop().map(|e| (e.t, e.seq));
            let b = heap.pop().map(|Reverse(k)| k);
            assert_eq!(a, b, "case {case}: drain");
            if a.is_none() {
                break;
            }
        }
        assert!(cq.is_empty(), "case {case}");
    });
}

// ---------------------------------------------------------------------
// Shard partitioning
// ---------------------------------------------------------------------

/// Every shard partition must cover every node exactly once, with no
/// overlap, in contiguous per-shard ranges, and `shard_range` must agree
/// with the owner table for every shard.
#[test]
fn shard_partition_covers_every_node_exactly_once() {
    use optimistic_active_messages::sim::{partition, shard_range};
    for_cases(200, |case, rng| {
        let nodes = 1 + rng.gen_below(200) as usize;
        let shards = 1 + rng.gen_below(32) as usize;
        let owners = partition(nodes, shards);
        assert_eq!(owners.len(), nodes, "case {case}: one owner per node");
        // Owners are non-decreasing (contiguous ranges) and within bounds.
        let effective = shards.min(nodes);
        for w in owners.windows(2) {
            assert!(w[0] <= w[1], "case {case}: owners must be sorted: {owners:?}");
            assert!(w[1] <= w[0] + 1, "case {case}: no shard skipped: {owners:?}");
        }
        assert_eq!(owners[0], 0, "case {case}");
        assert_eq!(owners[nodes - 1], effective - 1, "case {case}: all shards used");
        // shard_range reproduces the owner table exactly; the ranges
        // tile [0, nodes) with no gap and no overlap.
        let mut covered = vec![0u32; nodes];
        let mut sizes = Vec::new();
        for s in 0..effective {
            let r = shard_range(nodes, effective, s);
            sizes.push(r.len());
            for i in r {
                assert_eq!(owners[i], s, "case {case}: range/owner mismatch at node {i}");
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "case {case}: coverage {covered:?}");
        // Balanced: sizes differ by at most one.
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "case {case}: unbalanced {sizes:?}");
    });
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// Under any seed and any shard count, the admission gate's two contracts
/// hold: the pending-call count never exceeds the configured budget (the
/// per-node high-water mark is recorded as `admission_peak`), and every
/// shed call is answered with exactly one NACK — no silent drops, no
/// duplicate refusals. With the default Promote abort strategy the shed
/// path is the only NACK producer, so the two counters must agree to the
/// message. The shard dimension also pins partition invariance: the same
/// overload story must come out of the 1-shard and 2-shard engines.
#[test]
fn admission_budget_holds_and_every_shed_call_nacks_exactly_once() {
    for_cases(4, |case, r| {
        let seed = r.next_u64();
        let mut per_shard = Vec::new();
        for shards in [1usize, 2] {
            let o = service::run(ServiceParams {
                load_x100: 250,
                arrivals: 48,
                seed,
                shards,
                ..ServiceParams::default()
            });
            let t = o.app.stats.total();
            for n in &o.app.stats.per_node {
                assert!(
                    n.admission_peak <= service::PENDING_BUDGET as u64,
                    "case {case} shards {shards}: peak {} exceeds budget {}",
                    n.admission_peak,
                    service::PENDING_BUDGET
                );
            }
            assert_eq!(t.oam_nacks_sent, 0, "case {case}: Promote strategy never abort-NACKs");
            assert_eq!(
                t.calls_shed, t.nacks_received,
                "case {case} shards {shards}: each shed call gets exactly one NACK"
            );
            per_shard.push((o.app.answer, o.app.elapsed, o.completed, o.shed, o.app.stats));
        }
        assert_eq!(
            per_shard[0], per_shard[1],
            "case {case}: shard count must not change the story"
        );
    });
}
