//! CI matrix leg: application correctness and bit-determinism under a
//! dispatch mode selected by the `OAM_MODE` environment variable —
//! `orpc` (default), `trpc`, or `adaptive` (ORPC registration with an
//! adaptive demotion policy installed on each application's hot method).
//!
//! The same binary runs in every leg; only the environment changes, so
//! the matrix exercises the single `CallEngine` dispatch path under all
//! three policies without recompiling.

use optimistic_active_messages::apps::sor::SorParams;
use optimistic_active_messages::apps::tsp::TspParams;
use optimistic_active_messages::apps::water::{WaterParams, WaterVariant};
use optimistic_active_messages::apps::{sor, triangle, tsp, water, System};
use optimistic_active_messages::prelude::*;
use optimistic_active_messages::rpc::handler_id_for;

#[derive(PartialEq, Clone, Copy)]
enum MatrixMode {
    Orpc,
    Trpc,
    Adaptive,
}

fn matrix_mode() -> MatrixMode {
    match std::env::var("OAM_MODE").as_deref() {
        Ok("trpc") => MatrixMode::Trpc,
        Ok("adaptive") => MatrixMode::Adaptive,
        Ok("orpc") | Err(_) => MatrixMode::Orpc,
        Ok(other) => panic!("unknown OAM_MODE {other:?} (expected orpc|trpc|adaptive)"),
    }
}

fn system() -> System {
    match matrix_mode() {
        MatrixMode::Trpc => System::Trpc,
        _ => System::Orpc,
    }
}

/// The leg's machine configuration: in the adaptive leg, each listed hot
/// method gets a default adaptive ORPC policy.
fn cfg(nodes: usize, hot_methods: &[&str]) -> MachineConfig {
    let mut c = MachineConfig::cm5(nodes);
    if matrix_mode() == MatrixMode::Adaptive {
        for m in hot_methods {
            c = c.with_policy(handler_id_for(m).0, ExecPolicy::adaptive(AdaptivePolicy::default()));
        }
    }
    c
}

#[test]
fn triangle_is_correct_under_matrix_mode() {
    let (sol, pos, _) = triangle::sequential(4);
    let out = triangle::run_configured(system(), cfg(3, &["Triangle::insert"]), 4, 1);
    assert_eq!(out.answer, (sol << 40) | pos);
}

#[test]
fn tsp_is_correct_under_matrix_mode() {
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(p);
    let out = tsp::run_configured(system(), cfg(4, &["Tsp::get_job"]), p);
    assert_eq!(out.answer, best as u64);
}

#[test]
fn sor_is_correct_under_matrix_mode() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    let out = sor::run_configured(system(), cfg(4, &["Sor::store_boundary"]), p);
    assert_eq!(out.answer, ck);
}

#[test]
fn water_is_correct_under_matrix_mode() {
    let p = WaterParams { molecules: 12, iters: 2 };
    let variant = WaterVariant { system: system(), barrier: true };
    let hot = &["Water::store_positions", "Water::store_updates"];
    let a = water::run_configured(variant, cfg(4, hot), p).outcome.answer;
    let b = water::run_configured(variant, cfg(4, hot), p).outcome.answer;
    assert_eq!(a, b, "water must be deterministic within a mode");
}

#[test]
fn runs_are_bit_deterministic_under_matrix_mode() {
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let run_once = || {
        let out = tsp::run_configured(system(), cfg(4, &["Tsp::get_job"]), p);
        (out.elapsed, out.events, out.answer)
    };
    assert_eq!(run_once(), run_once());
}
