//! Cross-backend differential: the same application, configuration, and
//! seed must produce the same *answer* on the discrete-event simulator
//! and on the native host-threads backend. Only answers are compared —
//! the native backend runs on real cores under wall-clock time, so event
//! interleavings, traces, and timings legitimately differ — but every
//! app in this repo consumes remote data in fixed program order and folds
//! reductions with commutative integer ops, so answers are exact.
//!
//! Also the CI `backend-matrix` smoke: with `OAM_BACKEND` unset these
//! tests pin each backend explicitly and exercise both; with it set, the
//! env-following tests additionally run the apps under whatever backend
//! the matrix leg selected.

use optimistic_active_messages::apps::service::{self, ServiceParams};
use optimistic_active_messages::apps::sor::SorParams;
use optimistic_active_messages::apps::tsp::TspParams;
use optimistic_active_messages::apps::water::{WaterParams, WaterVariant};
use optimistic_active_messages::apps::{sor, triangle, tsp, water, System};
use optimistic_active_messages::prelude::*;

fn on(backend: Backend, nodes: usize) -> MachineConfig {
    MachineConfig::cm5(nodes).with_backend(backend)
}

#[test]
fn sor_answers_match_across_backends() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    for backend in [Backend::Sim, Backend::Native] {
        let out = sor::run_configured(System::Orpc, on(backend, 4), p);
        assert_eq!(out.answer, ck, "sor answer wrong on {}", backend.label());
    }
}

#[test]
fn tsp_answers_match_across_backends() {
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(p);
    for backend in [Backend::Sim, Backend::Native] {
        let out = tsp::run_configured(System::Orpc, on(backend, 4), p);
        assert_eq!(out.answer, best as u64, "tsp answer wrong on {}", backend.label());
    }
}

#[test]
fn triangle_answers_match_across_backends() {
    let (sol, pos, _) = triangle::sequential(4);
    for backend in [Backend::Sim, Backend::Native] {
        let out = triangle::run_configured(System::Orpc, on(backend, 3), 4, 1);
        assert_eq!(out.answer, (sol << 40) | pos, "triangle answer wrong on {}", backend.label());
    }
}

#[test]
fn water_answers_match_across_backends() {
    let p = WaterParams { molecules: 12, iters: 2 };
    let variant = WaterVariant { system: System::Orpc, barrier: true };
    let sim = water::run_configured(variant, on(Backend::Sim, 4), p).outcome.answer;
    let native = water::run_configured(variant, on(Backend::Native, 4), p).outcome.answer;
    // Remote positions and updates are consumed in fixed program order and
    // the energy reduction is a wrapping u64 sum, so even the float-derived
    // checksum is exact across backends.
    assert_eq!(sim, native, "water energy checksum differs across backends");
}

#[test]
fn trpc_mode_works_on_native() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    let out = sor::run_configured(System::Trpc, on(Backend::Native, 4), p);
    assert_eq!(out.answer, ck, "sor answer wrong under TRPC on native");
}

#[test]
fn adaptive_policy_works_on_native() {
    use optimistic_active_messages::rpc::handler_id_for;
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(p);
    let cfg = on(Backend::Native, 4).with_policy(
        handler_id_for("Tsp::get_job").0,
        ExecPolicy::adaptive(AdaptivePolicy::default()),
    );
    let out = tsp::run_configured(System::Orpc, cfg, p);
    assert_eq!(out.answer, best as u64, "tsp answer wrong under adaptive policy on native");
}

/// The service's completed/shed/expired split depends on real timing under
/// the native backend, so the differential checks conservation invariants
/// rather than exact counts: every arrival is accounted for exactly once,
/// and the ORPC/TRPC/adaptive engine plus admission control must hold them
/// on both backends.
#[test]
fn service_invariants_hold_across_backends() {
    for backend in [Backend::Sim, Backend::Native] {
        let params =
            ServiceParams { arrivals: 48, backend: Some(backend), ..ServiceParams::default() };
        let arrivals = (params.arrivals as u64) * (params.drivers as u64);
        let o = service::run(params);
        assert_eq!(
            o.completed + o.abandoned,
            arrivals,
            "every arrival must resolve exactly once on {} (completed {} abandoned {})",
            backend.label(),
            o.completed,
            o.abandoned,
        );
        assert!(o.completed > 0, "service completed nothing on {}", backend.label());
    }
}

/// Differential for the batched delivery layer: the batched (default)
/// and naive per-message (`batch = 1`) paths must be bit-identical —
/// same answers everywhere, and on the deterministic simulator the same
/// full stats, virtual end time, and event count — across seeds and
/// shard counts. `MachineStats` equality deliberately excludes the
/// engine counters, which are *supposed* to differ (fewer batch
/// publishes is the whole optimization); everything observable by the
/// program must not.
#[test]
fn batched_and_naive_delivery_are_bit_identical_on_sim() {
    let naive = ShardTuning { batch: Some(1), ..ShardTuning::default() };
    let p = WaterParams { molecules: 12, iters: 2 };
    let variant = WaterVariant { system: System::Orpc, barrier: true };
    for seed in [7u64, 41] {
        for shards in [1usize, 2, 4, 8] {
            let cfg = on(Backend::Sim, 8).with_seed(seed).with_shards(shards);
            let b = water::run_configured(variant, cfg.clone(), p).outcome;
            let n = water::run_configured(variant, cfg.with_tuning(naive), p).outcome;
            let at = format!("seed {seed} shards {shards}");
            assert_eq!(b.answer, n.answer, "answer differs batched vs naive ({at})");
            assert_eq!(b.stats, n.stats, "stats differ batched vs naive ({at})");
            assert_eq!(b.elapsed, n.elapsed, "end time differs batched vs naive ({at})");
            assert_eq!(b.events, n.events, "event count differs batched vs naive ({at})");
        }
    }
}

/// Native half of the batching differential: the ring-and-flush path and
/// the per-message reference path (`batch = 1`, every send flushes) must
/// agree on answers. Timings and wake counts legitimately differ on real
/// cores, so only answers are compared, against the sequential oracle.
#[test]
fn batched_and_naive_delivery_agree_on_native() {
    let naive = ShardTuning { batch: Some(1), ..ShardTuning::default() };
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    for seed in [7u64, 41] {
        let cfg = on(Backend::Native, 4).with_seed(seed);
        let b = sor::run_configured(System::Orpc, cfg.clone(), p);
        let n = sor::run_configured(System::Orpc, cfg.with_tuning(naive), p);
        assert_eq!(b.answer, ck, "batched native answer wrong (seed {seed})");
        assert_eq!(n.answer, ck, "naive native answer wrong (seed {seed})");
    }
}

/// Env-following smoke for the CI backend matrix: run one app through
/// `cfg.effective_backend()` resolution (explicit pin absent), honoring
/// whatever `OAM_BACKEND` the matrix leg exported.
#[test]
fn apps_honor_the_backend_environment() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    let out = sor::run_configured(System::Orpc, MachineConfig::cm5(4), p);
    assert_eq!(out.answer, ck);
    let (sol, pos, _) = triangle::sequential(4);
    let out = triangle::run_configured(System::Orpc, MachineConfig::cm5(3), 4, 1);
    assert_eq!(out.answer, (sol << 40) | pos);
}
