//! Differential correctness for the unified call engine: every
//! application must compute the **bit-identical** answer whether its
//! remote procedures run optimistically (ORPC) or with a thread per call
//! (TRPC), under every abort-resolution strategy, across machine seeds.
//! Dispatch policy schedules work; it must never change results.

use optimistic_active_messages::apps::sor::SorParams;
use optimistic_active_messages::apps::tsp::TspParams;
use optimistic_active_messages::apps::water::{WaterParams, WaterVariant};
use optimistic_active_messages::apps::{sor, triangle, tsp, water, System};
use optimistic_active_messages::prelude::*;

const SEEDS: [u64; 3] = [1, 0xBEEF, 0x5EED_5EED];
const MODES: [System; 2] = [System::Orpc, System::Trpc];
const STRATEGIES: [AbortStrategy; 3] =
    [AbortStrategy::Promote, AbortStrategy::Rerun, AbortStrategy::Nack];

fn cfg(nodes: usize, seed: u64, strategy: AbortStrategy) -> MachineConfig {
    MachineConfig::cm5(nodes).with_seed(seed).with_abort_strategy(strategy)
}

#[test]
fn triangle_answers_are_mode_and_strategy_invariant() {
    let (sol, pos, _) = triangle::sequential(4);
    let expect = (sol << 40) | pos;
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let out = triangle::run_configured(mode, cfg(3, seed, strategy), 4, 1);
                assert_eq!(
                    out.answer,
                    expect,
                    "triangle {} {strategy:?} seed={seed:#x}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn tsp_answers_are_mode_and_strategy_invariant() {
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(p);
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let out = tsp::run_configured(mode, cfg(4, seed, strategy), p);
                assert_eq!(
                    out.answer,
                    best as u64,
                    "tsp {} {strategy:?} seed={seed:#x}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn sor_answers_are_mode_and_strategy_invariant() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let out = sor::run_configured(mode, cfg(4, seed, strategy), p);
                assert_eq!(out.answer, ck, "sor {} {strategy:?} seed={seed:#x}", mode.label());
            }
        }
    }
}

#[test]
fn water_answers_are_mode_and_strategy_invariant() {
    let p = WaterParams { molecules: 12, iters: 2 };
    let mut reference = None;
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let variant = WaterVariant { system: mode, barrier: true };
                let out = water::run_configured(variant, cfg(4, seed, strategy), p);
                let expect = *reference.get_or_insert(out.outcome.answer);
                assert_eq!(
                    out.outcome.answer,
                    expect,
                    "water {} {strategy:?} seed={seed:#x}",
                    mode.label()
                );
            }
        }
    }
}
