//! Differential correctness for the unified call engine: every
//! application must compute the **bit-identical** answer whether its
//! remote procedures run optimistically (ORPC) or with a thread per call
//! (TRPC), under every abort-resolution strategy, across machine seeds.
//! Dispatch policy schedules work; it must never change results.

use optimistic_active_messages::apps::sor::SorParams;
use optimistic_active_messages::apps::tsp::TspParams;
use optimistic_active_messages::apps::water::{WaterParams, WaterVariant};
use optimistic_active_messages::apps::{sor, triangle, tsp, water, System};
use optimistic_active_messages::prelude::*;

/// Shard counts exercised by the fence-policy differential: `effective_shards`
/// clamps to the node count, so these tests run 8-node machines to make the
/// 8-shard leg meaningful.
const FENCE_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const SEEDS: [u64; 3] = [1, 0xBEEF, 0x5EED_5EED];
const MODES: [System; 2] = [System::Orpc, System::Trpc];
const STRATEGIES: [AbortStrategy; 3] =
    [AbortStrategy::Promote, AbortStrategy::Rerun, AbortStrategy::Nack];

fn cfg(nodes: usize, seed: u64, strategy: AbortStrategy) -> MachineConfig {
    MachineConfig::cm5(nodes).with_seed(seed).with_abort_strategy(strategy)
}

#[test]
fn triangle_answers_are_mode_and_strategy_invariant() {
    let (sol, pos, _) = triangle::sequential(4);
    let expect = (sol << 40) | pos;
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let out = triangle::run_configured(mode, cfg(3, seed, strategy), 4, 1);
                assert_eq!(
                    out.answer,
                    expect,
                    "triangle {} {strategy:?} seed={seed:#x}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn tsp_answers_are_mode_and_strategy_invariant() {
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(p);
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let out = tsp::run_configured(mode, cfg(4, seed, strategy), p);
                assert_eq!(
                    out.answer,
                    best as u64,
                    "tsp {} {strategy:?} seed={seed:#x}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn sor_answers_are_mode_and_strategy_invariant() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    let (ck, _) = sor::sequential(p);
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let out = sor::run_configured(mode, cfg(4, seed, strategy), p);
                assert_eq!(out.answer, ck, "sor {} {strategy:?} seed={seed:#x}", mode.label());
            }
        }
    }
}

#[test]
fn water_answers_are_mode_and_strategy_invariant() {
    let p = WaterParams { molecules: 12, iters: 2 };
    let mut reference = None;
    for seed in SEEDS {
        for mode in MODES {
            for strategy in STRATEGIES {
                let variant = WaterVariant { system: mode, barrier: true };
                let out = water::run_configured(variant, cfg(4, seed, strategy), p);
                let expect = *reference.get_or_insert(out.outcome.answer);
                assert_eq!(
                    out.outcome.answer,
                    expect,
                    "water {} {strategy:?} seed={seed:#x}",
                    mode.label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shard-count invariance: partitioning the simulator across host worker
// threads is a performance knob, never a semantics knob. Every app must
// produce the identical answer, identical virtual end time, and
// identical per-node statistics for any shard count.
// ---------------------------------------------------------------------

const SHARD_SEEDS: [u64; 2] = [1, 0xBEEF];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn shard_cfg(nodes: usize, seed: u64, shards: usize) -> MachineConfig {
    cfg(nodes, seed, AbortStrategy::Promote).with_shards(shards)
}

/// Assert two outcomes are observably identical: answer, virtual end
/// time, and the full per-node statistics vector.
fn assert_outcomes_match(
    a: &optimistic_active_messages::apps::AppOutcome,
    b: &optimistic_active_messages::apps::AppOutcome,
    what: &str,
) {
    assert_eq!(a.answer, b.answer, "{what}: answer");
    assert_eq!(a.elapsed, b.elapsed, "{what}: virtual end time");
    assert_eq!(a.stats, b.stats, "{what}: per-node stats");
}

#[test]
fn triangle_is_shard_count_invariant() {
    for seed in SHARD_SEEDS {
        for mode in MODES {
            let reference = triangle::run_configured(mode, shard_cfg(4, seed, 1), 4, 1);
            for shards in SHARD_COUNTS {
                let out = triangle::run_configured(mode, shard_cfg(4, seed, shards), 4, 1);
                assert_outcomes_match(
                    &reference,
                    &out,
                    &format!("triangle {} seed={seed:#x} shards={shards}", mode.label()),
                );
            }
        }
    }
}

#[test]
fn tsp_is_shard_count_invariant() {
    let p = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    for seed in SHARD_SEEDS {
        for mode in MODES {
            let reference = tsp::run_configured(mode, shard_cfg(4, seed, 1), p);
            for shards in SHARD_COUNTS {
                let out = tsp::run_configured(mode, shard_cfg(4, seed, shards), p);
                assert_outcomes_match(
                    &reference,
                    &out,
                    &format!("tsp {} seed={seed:#x} shards={shards}", mode.label()),
                );
            }
        }
    }
}

#[test]
fn sor_is_shard_count_invariant() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    for seed in SHARD_SEEDS {
        for mode in [System::HandAm, System::Orpc, System::Trpc] {
            let reference = sor::run_configured(mode, shard_cfg(4, seed, 1), p);
            for shards in SHARD_COUNTS {
                let out = sor::run_configured(mode, shard_cfg(4, seed, shards), p);
                assert_outcomes_match(
                    &reference,
                    &out,
                    &format!("sor {} seed={seed:#x} shards={shards}", mode.label()),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fence-policy invariance: the adaptive fence (quiet-round barrier
// fusion + min-holder widening) must be observably identical to the
// naive reference fence — global min + lookahead with an unconditional
// exchange round, the textbook conservative-epoch schedule. Both
// policies run with `force_epoch` so even the single-shard legs (and
// the 1-shard naive reference itself) exercise the epoch engine rather
// than falling back to the legacy in-process loop.
// ---------------------------------------------------------------------

fn fence_cfg(nodes: usize, seed: u64, shards: usize, naive: bool) -> MachineConfig {
    shard_cfg(nodes, seed, shards).with_tuning(ShardTuning {
        naive_fence: Some(naive),
        force_epoch: Some(true),
        ..Default::default()
    })
}

#[test]
fn adaptive_fence_matches_naive_reference_for_sor() {
    let p = SorParams { rows: 16, cols: 8, iters: 3 };
    for seed in SHARD_SEEDS {
        let reference = sor::run_configured(System::Orpc, fence_cfg(8, seed, 1, true), p);
        for shards in FENCE_SHARD_COUNTS {
            for naive in [false, true] {
                let out = sor::run_configured(System::Orpc, fence_cfg(8, seed, shards, naive), p);
                assert_outcomes_match(
                    &reference,
                    &out,
                    &format!("sor seed={seed:#x} shards={shards} naive={naive}"),
                );
            }
        }
    }
}

#[test]
fn adaptive_fence_matches_naive_reference_for_water_collectives() {
    // Water with barriers is the reduce-heavy workload: every iteration
    // broadcasts reduction contributions across all shards, so quiet-round
    // fusion and the widened fence both face cross traffic every epoch.
    let p = WaterParams { molecules: 12, iters: 2 };
    let variant = WaterVariant { system: System::Orpc, barrier: true };
    for seed in SHARD_SEEDS {
        let reference = water::run_configured(variant, fence_cfg(8, seed, 1, true), p);
        for shards in FENCE_SHARD_COUNTS {
            for naive in [false, true] {
                let out = water::run_configured(variant, fence_cfg(8, seed, shards, naive), p);
                assert_outcomes_match(
                    &reference.outcome,
                    &out.outcome,
                    &format!("water seed={seed:#x} shards={shards} naive={naive}"),
                );
            }
        }
    }
}

#[test]
fn sor_256node_is_shard_count_invariant() {
    // The perfsuite's large-machine row, shrunk to a debug-runtime grid:
    // 256 nodes is where the per-(src,dst) mailbox matrix and the owner
    // table get real fan-out. Answers, end time, and per-node stats must
    // not notice the shard count. The reference leg forces the epoch
    // engine so all legs share the keyed collective-publish schedule: the
    // legacy engine's unkeyed reducer publishes tie-break differently
    // against same-timestamp events at this scale, ending the run a
    // constant 33 us later (identical work, larger idle_time) — a
    // known engine-schedule difference, not a shard-count effect. The
    // answer must match the legacy engine regardless.
    let p = SorParams { rows: 256, cols: 16, iters: 2 };
    let legacy = sor::run_configured(System::Orpc, shard_cfg(256, 1, 1), p);
    let reference = sor::run_configured(System::Orpc, fence_cfg(256, 1, 1, false), p);
    assert_eq!(legacy.answer, reference.answer, "sor 256-node: legacy vs epoch answer");
    for shards in [2, 4, 8] {
        let out = sor::run_configured(System::Orpc, shard_cfg(256, 1, shards), p);
        assert_outcomes_match(&reference, &out, &format!("sor 256-node shards={shards}"));
    }
}

#[test]
fn water_is_shard_count_invariant() {
    let p = WaterParams { molecules: 12, iters: 2 };
    for seed in SHARD_SEEDS {
        for mode in MODES {
            for barrier in [true, false] {
                let variant = WaterVariant { system: mode, barrier };
                let reference = water::run_configured(variant, shard_cfg(4, seed, 1), p);
                for shards in SHARD_COUNTS {
                    let out = water::run_configured(variant, shard_cfg(4, seed, shards), p);
                    assert_outcomes_match(
                        &reference.outcome,
                        &out.outcome,
                        &format!("water {} seed={seed:#x} shards={shards}", variant.label()),
                    );
                    assert_eq!(
                        reference.after_first_iter,
                        out.after_first_iter,
                        "water {} seed={seed:#x} shards={shards}: first-iteration time",
                        variant.label()
                    );
                }
            }
        }
    }
}
