//! MUST NOT COMPILE (E0382): sending a chunk after `close` — the close
//! consumed the transmitter, so the session protocol has already ended.

use oam_rpc::define_rpc_service;

pub struct St;

define_rpc_service! {
    /// Fixture service.
    service S {
        state St;

        /// Tries to chunk after closing.
        stream nums(ctx, st, tx, n: u32) [u32] -> u32 {
            let _ = (ctx, st);
            let tx = tx.send(&1).await;
            let closed = tx.close(&n).await;
            let _ = tx.send(&2).await; // error: `tx` was moved by `close`
            closed
        }
    }
}

fn main() {}
