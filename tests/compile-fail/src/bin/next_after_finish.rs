//! MUST NOT COMPILE (E0382): reading more chunks after `finish` — the
//! finish consumed the client-side handle along with the session.

use oam_rpc::{define_rpc_service, Node, NodeId, Rpc};

pub struct St;

define_rpc_service! {
    /// Fixture service.
    service S {
        state St;

        /// Stream `0..n`, close with `n`.
        stream nums(ctx, st, tx, n: u32) [u32] -> u32 {
            let _ = (ctx, st);
            let mut tx = tx;
            for i in 0..n {
                tx = tx.send(&i).await;
            }
            tx.close(&n).await
        }
    }
}

#[allow(dead_code)]
async fn drive(rpc: &Rpc, node: &Node, dst: NodeId) {
    let mut h = S::nums::call(rpc, node, dst, 3).await;
    let _fin = h.finish().await;
    let _ = h.next().await; // error: `h` was moved by `finish`
}

fn main() {}
