//! Control case: a well-formed stream service and client MUST compile —
//! proving the failing cases fail for the right reason, not because the
//! fixture is broken.

use oam_rpc::{define_rpc_service, Node, NodeId, Rpc};

pub struct St;

define_rpc_service! {
    /// Fixture service.
    service S {
        state St;

        /// Stream `0..n`, close with `n`.
        stream nums(ctx, st, tx, n: u32) [u32] -> u32 {
            let _ = (ctx, st);
            let mut tx = tx;
            for i in 0..n {
                tx = tx.send(&i).await;
            }
            tx.close(&n).await
        }
    }
}

#[allow(dead_code)]
async fn drive(rpc: &Rpc, node: &Node, dst: NodeId) -> u32 {
    let mut h = S::nums::call(rpc, node, dst, 3).await;
    while let Some(_x) = h.next().await {}
    h.finish().await.expect("close arrives")
}

fn main() {}
