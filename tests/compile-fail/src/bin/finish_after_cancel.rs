//! MUST NOT COMPILE (E0382): finishing a session the client already
//! cancelled — the cancel consumed the handle.

use oam_rpc::{define_rpc_service, Node, NodeId, Rpc};

pub struct St;

define_rpc_service! {
    /// Fixture service.
    service S {
        state St;

        /// Stream `0..n`, close with `n`.
        stream nums(ctx, st, tx, n: u32) [u32] -> u32 {
            let _ = (ctx, st);
            let mut tx = tx;
            for i in 0..n {
                tx = tx.send(&i).await;
            }
            tx.close(&n).await
        }
    }
}

#[allow(dead_code)]
async fn drive(rpc: &Rpc, node: &Node, dst: NodeId) {
    let h = S::nums::call(rpc, node, dst, 3).await;
    h.cancel();
    let _ = h.finish().await; // error: `h` was moved by `cancel`
}

fn main() {}
