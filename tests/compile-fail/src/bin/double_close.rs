//! MUST NOT COMPILE (E0382): closing a session twice — the first close
//! consumed the transmitter.

use oam_rpc::define_rpc_service;

pub struct St;

define_rpc_service! {
    /// Fixture service.
    service S {
        state St;

        /// Tries to close twice.
        stream nums(ctx, st, tx, n: u32) [u32] -> u32 {
            let _ = (ctx, st);
            let closed = tx.close(&n).await;
            let _ = tx.close(&n).await; // error: `tx` was moved by the first `close`
            closed
        }
    }
}

fn main() {}
