//! MUST NOT COMPILE (E0308): a stream body that never closes — the body
//! must produce the `StreamClosed` proof token, and only `close` (or a
//! diverging expression) can.

use oam_rpc::define_rpc_service;

pub struct St;

define_rpc_service! {
    /// Fixture service.
    service S {
        state St;

        /// Sends one chunk and just... stops.
        stream nums(ctx, st, tx, n: u32) [u32] -> u32 {
            let _ = (ctx, st);
            tx.send(&n).await // error: `StreamTx` is not `StreamClosed`
        }
    }
}

fn main() {}
