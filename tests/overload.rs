//! Overload acceptance: the admission-controlled service must keep its
//! goodput when offered load doubles past saturation, while the
//! unbounded-admission baseline degrades; adaptive demotion must be
//! deterministic; deadlines must actually bound request latency.

use oam_apps::service::{run, ServiceParams, ServiceVariant};
use oam_model::Dur;

fn base() -> ServiceParams {
    ServiceParams { arrivals: 192, ..ServiceParams::default() }
}

#[test]
fn admission_sustains_goodput_at_twice_saturation() {
    let at_1x = run(base());
    let at_2x = run(ServiceParams { load_x100: 200, ..base() });
    let raw_2x = run(ServiceParams { load_x100: 200, admission: false, ..base() });

    assert!(at_1x.completed > 0 && at_2x.completed > 0);
    // Goodput is rate, not count: at 2x the same arrivals land in half the
    // time, so a server that keeps doing useful work holds its rate even
    // while shedding the excess.
    assert!(
        at_2x.goodput_per_sec >= 0.90 * at_1x.goodput_per_sec,
        "admission-controlled goodput collapsed: {:.0}/s at 2x vs {:.0}/s at 1x",
        at_2x.goodput_per_sec,
        at_1x.goodput_per_sec
    );
    // The unbounded baseline admits everything; past saturation that shows
    // up as worse tail latency or more blown deadlines than the
    // admission-controlled run — and zero sheds, by construction.
    assert_eq!(raw_2x.shed, 0);
    assert!(
        raw_2x.p999 > at_2x.p999
            || raw_2x.abandoned + raw_2x.expired > at_2x.abandoned + at_2x.expired,
        "baseline did not degrade: raw p999 {:?} vs adm {:?}, raw lost {} vs adm lost {}",
        raw_2x.p999,
        at_2x.p999,
        raw_2x.abandoned + raw_2x.expired,
        at_2x.abandoned + at_2x.expired
    );
}

#[test]
fn overloaded_run_actually_sheds_and_bounds_pending() {
    let o = run(ServiceParams { load_x100: 300, ..base() });
    assert!(o.shed > 0, "3x load must trip admission control");
    let budget = oam_apps::service::PENDING_BUDGET as u64;
    for n in &o.app.stats.per_node {
        assert!(
            n.admission_peak <= budget,
            "pending budget exceeded: {} > {}",
            n.admission_peak,
            budget
        );
    }
}

#[test]
fn adaptive_demotion_is_deterministic_per_seed() {
    let a = run(ServiceParams { load_x100: 200, ..base() });
    let b = run(ServiceParams { load_x100: 200, ..base() });
    assert_eq!(a.mode_switches, b.mode_switches, "same seed, same switch count");
    assert_eq!(a.app.answer, b.app.answer);
    let c = run(ServiceParams { load_x100: 200, seed: 0xdead_beef, ..base() });
    // A different seed is allowed a different count — but must itself be
    // reproducible.
    let d = run(ServiceParams { load_x100: 200, seed: 0xdead_beef, ..base() });
    assert_eq!(c.mode_switches, d.mode_switches);
}

#[test]
fn deadlines_bound_observed_latency() {
    let p = ServiceParams { load_x100: 200, deadline: Dur::from_micros(1_500), ..base() };
    let o = run(p.clone());
    // Completed calls were answered within their deadline (the histogram
    // rounds up to a bucket boundary, so allow one bucket of slack).
    assert!(
        o.p999 <= Dur::from_nanos(p.deadline.as_nanos() * 5 / 4),
        "p999 {:?} exceeds the {:?} deadline",
        o.p999,
        p.deadline
    );
    let arrivals = (p.drivers as u64) * u64::from(p.arrivals);
    assert_eq!(o.completed + o.abandoned, arrivals, "every arrival resolves exactly once");
}

#[test]
fn dispatch_variants_complete_under_load() {
    for v in [ServiceVariant::Orpc, ServiceVariant::Trpc, ServiceVariant::Adaptive] {
        let o = run(ServiceParams { variant: v, load_x100: 150, ..base() });
        assert!(o.completed > 100, "{}: completed {}", v.label(), o.completed);
    }
}
