//! Golden determinism checks for the simulator core.
//!
//! The event-queue implementation (a calendar queue since the perf PR) must
//! preserve the executor's (time, sequence) total order *exactly*: a
//! fixed-seed run must produce a byte-identical trace to the one recorded
//! with the original `BinaryHeap` executor. These constants were captured
//! before the queue swap; any change to them means the swap (or a later
//! "optimization") altered observable scheduling order, which is a bug even
//! if every answer still comes out right.
//!
//! If a *deliberate* semantic change to the runtime invalidates them,
//! re-record with `OAM_PRINT_GOLDEN=1 cargo test -q --test
//! determinism_golden -- --nocapture`.

use std::cell::Cell;
use std::rc::Rc;

use optimistic_active_messages::apps::tsp::{self, TspParams};
use optimistic_active_messages::apps::System;
use optimistic_active_messages::machine::MachineBuilder;
use optimistic_active_messages::model::{Dur, FaultPlan, MachineConfig, NodeId, ReliabilityConfig};
use optimistic_active_messages::rpc::define_rpc_service;
use optimistic_active_messages::trace::Recorder;

/// FNV-1a 64-bit over `bytes` — stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The scenario under test: TSP (10 cities) over a 5% drop/dup/delay
/// fabric with retransmission — every subsystem (executor, fabric faults,
/// RNG, scheduler, RPC reliability) feeds the trace.
fn chaos_tsp() -> (Recorder, tsp::TspParams, optimistic_active_messages::apps::AppOutcome) {
    let p = 0.05;
    let cfg = MachineConfig::cm5(5)
        .with_fault_plan(FaultPlan::drop_only(p).with_dup(p).with_delay(p, Dur::from_micros(20)))
        .with_reliability(ReliabilityConfig::retransmitting());
    let params = TspParams { ncities: 10, prefix_len: 4, ..Default::default() };
    let rec = Recorder::new();
    let rec2 = rec.clone();
    let out = tsp::run_hooked(System::Orpc, cfg, params, move |m| {
        for n in m.nodes() {
            rec2.attach(n);
        }
    });
    (rec, params, out)
}

/// Render the whole trace to bytes. `Debug` for trace events is plain data
/// (ids, integer nanoseconds, enum names) — no addresses, no floats — so
/// the rendering is stable for a fixed binary and seed.
fn trace_bytes(rec: &Recorder) -> Vec<u8> {
    let mut buf = String::new();
    for ev in rec.events() {
        buf.push_str(&format!("{ev:?}\n"));
    }
    buf.into_bytes()
}

const GOLDEN_TRACE_HASH: u64 = 0x38b7_c4b1_2123_036d;
const GOLDEN_ANSWER: u64 = 3187;
const GOLDEN_END_NS: u64 = 294_384_659;
const GOLDEN_EVENTS: u64 = 7281;

#[test]
fn fixed_seed_tsp_chaos_trace_is_byte_identical_to_the_pre_swap_golden() {
    let (rec, _params, out) = chaos_tsp();
    let bytes = trace_bytes(&rec);
    let hash = fnv1a(&bytes);
    if std::env::var("OAM_PRINT_GOLDEN").is_ok() {
        println!(
            "GOLDEN_TRACE_HASH = {hash:#018x}\nGOLDEN_ANSWER = {}\nGOLDEN_END_NS = {}\nGOLDEN_EVENTS = {}\n({} trace events, {} bytes)",
            out.answer,
            out.elapsed.as_nanos(),
            out.events,
            rec.len(),
            bytes.len(),
        );
    }
    assert!(rec.len() > 1_000, "trace is non-trivial ({} events)", rec.len());
    assert_eq!(out.answer, GOLDEN_ANSWER, "TSP chaos answer drifted");
    assert_eq!(out.elapsed.as_nanos(), GOLDEN_END_NS, "virtual end time drifted");
    assert_eq!(out.events, GOLDEN_EVENTS, "executed event count drifted");
    assert_eq!(
        hash, GOLDEN_TRACE_HASH,
        "trace bytes drifted (hash {hash:#018x}): the event queue no longer preserves the \
         original (time, seq) execution order"
    );
}

// ---------------------------------------------------------------------
// Bulk-transfer golden scenario
// ---------------------------------------------------------------------

/// State for the bulk-ingest service: a running checksum.
pub struct SinkState {
    /// Accumulated checksum of everything ingested.
    pub sum: Cell<u64>,
}

define_rpc_service! {
    /// Consumes bulk payloads, folding them into a checksum.
    service Sink {
        state SinkState;

        /// Fold `data` into the running checksum and return it.
        rpc ingest(ctx, st, data: Vec<u8>) -> u64 {
            let _ = ctx;
            let s: u64 = data.iter().map(|&b| b as u64).sum();
            let v = st.sum.get().wrapping_add(s).wrapping_add(1);
            st.sum.set(v);
            v
        }
    }
}

/// The bulk scenario: 40 rounds of 4 KiB payloads from node 0 to node 1
/// over the same 5% drop/dup/delay fabric with retransmission. This drives
/// the pooled-buffer bulk path — lease, spill, Rc-shared retransmit
/// copies, pool recycling — under chaos, so buffer management feeds the
/// trace alongside the executor, fabric, and RPC reliability layers.
fn chaos_bulk() -> (Recorder, u64, u64, u64) {
    let p = 0.05;
    let cfg = MachineConfig::cm5(2)
        .with_fault_plan(FaultPlan::drop_only(p).with_dup(p).with_delay(p, Dur::from_micros(20)))
        .with_reliability(ReliabilityConfig::retransmitting());
    let machine = MachineBuilder::from_config(cfg).build();
    for i in 0..2 {
        Sink::register_all(
            machine.rpc(),
            NodeId(i),
            Rc::new(SinkState { sum: Cell::new(0) }),
            optimistic_active_messages::rpc::RpcMode::Orpc,
        );
    }
    let rec = Recorder::new();
    for n in machine.nodes() {
        rec.attach(n);
    }
    let answer = Rc::new(Cell::new(0u64));
    let a = Rc::clone(&answer);
    let report = machine.run(move |env| {
        let a = Rc::clone(&a);
        async move {
            if env.id().index() == 0 {
                let mut last = 0;
                for round in 0..40u32 {
                    let data: Vec<u8> =
                        (0..4096u32).map(|i| ((i.wrapping_mul(31) + round) % 251) as u8).collect();
                    last = Sink::ingest::call(env.rpc(), env.node(), NodeId(1), data)
                        .await
                        .expect("reply decode");
                }
                a.set(last);
            }
            env.barrier().await;
        }
    });
    (rec, answer.get(), report.end_time.as_nanos(), report.events)
}

const GOLDEN_BULK_TRACE_HASH: u64 = 0x0476_0e00_f408_10f9;
const GOLDEN_BULK_ANSWER: u64 = 20_478_066;
const GOLDEN_BULK_END_NS: u64 = 49_358_050;
const GOLDEN_BULK_EVENTS: u64 = 964;

#[test]
fn fixed_seed_bulk_chaos_trace_is_byte_identical_to_the_recorded_golden() {
    let (rec, answer, end_ns, events) = chaos_bulk();
    let bytes = trace_bytes(&rec);
    let hash = fnv1a(&bytes);
    if std::env::var("OAM_PRINT_GOLDEN").is_ok() {
        println!(
            "GOLDEN_BULK_TRACE_HASH = {hash:#018x}\nGOLDEN_BULK_ANSWER = {answer}\nGOLDEN_BULK_END_NS = {end_ns}\nGOLDEN_BULK_EVENTS = {events}\n({} trace events, {} bytes)",
            rec.len(),
            bytes.len(),
        );
    }
    assert!(rec.len() > 100, "trace is non-trivial ({} events)", rec.len());
    assert_eq!(answer, GOLDEN_BULK_ANSWER, "bulk chaos checksum drifted");
    assert_eq!(end_ns, GOLDEN_BULK_END_NS, "virtual end time drifted");
    assert_eq!(events, GOLDEN_BULK_EVENTS, "executed event count drifted");
    assert_eq!(
        hash, GOLDEN_BULK_TRACE_HASH,
        "bulk trace bytes drifted (hash {hash:#018x}): the pooled payload path altered \
         observable scheduling order"
    );
}

#[test]
fn bulk_golden_scenario_is_reproducible_within_one_binary() {
    let (rec_a, ans_a, end_a, ev_a) = chaos_bulk();
    let (rec_b, ans_b, end_b, ev_b) = chaos_bulk();
    assert_eq!(trace_bytes(&rec_a), trace_bytes(&rec_b));
    assert_eq!((ans_a, end_a, ev_a), (ans_b, end_b, ev_b));
}

#[test]
fn golden_scenario_is_reproducible_within_one_binary() {
    let (rec_a, _, out_a) = chaos_tsp();
    let (rec_b, _, out_b) = chaos_tsp();
    assert_eq!(trace_bytes(&rec_a), trace_bytes(&rec_b));
    assert_eq!(out_a.answer, out_b.answer);
    assert_eq!(out_a.elapsed, out_b.elapsed);
}
