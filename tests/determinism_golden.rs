//! Golden determinism checks for the simulator core.
//!
//! The event-queue implementation (a calendar queue since the perf PR) must
//! preserve the executor's (time, sequence) total order *exactly*: a
//! fixed-seed run must produce a byte-identical trace to the one recorded
//! with the original `BinaryHeap` executor. These constants were captured
//! before the queue swap; any change to them means the swap (or a later
//! "optimization") altered observable scheduling order, which is a bug even
//! if every answer still comes out right.
//!
//! If a *deliberate* semantic change to the runtime invalidates them,
//! re-record with `OAM_PRINT_GOLDEN=1 cargo test -q --test
//! determinism_golden -- --nocapture`.

use optimistic_active_messages::apps::tsp::{self, TspParams};
use optimistic_active_messages::apps::System;
use optimistic_active_messages::model::{Dur, FaultPlan, MachineConfig, ReliabilityConfig};
use optimistic_active_messages::trace::Recorder;

/// FNV-1a 64-bit over `bytes` — stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The scenario under test: TSP (10 cities) over a 5% drop/dup/delay
/// fabric with retransmission — every subsystem (executor, fabric faults,
/// RNG, scheduler, RPC reliability) feeds the trace.
fn chaos_tsp() -> (Recorder, tsp::TspParams, optimistic_active_messages::apps::AppOutcome) {
    let p = 0.05;
    let cfg = MachineConfig::cm5(5)
        .with_fault_plan(FaultPlan::drop_only(p).with_dup(p).with_delay(p, Dur::from_micros(20)))
        .with_reliability(ReliabilityConfig::retransmitting());
    let params = TspParams { ncities: 10, prefix_len: 4, ..Default::default() };
    let rec = Recorder::new();
    let rec2 = rec.clone();
    let out = tsp::run_hooked(System::Orpc, cfg, params, move |m| {
        for n in m.nodes() {
            rec2.attach(n);
        }
    });
    (rec, params, out)
}

/// Render the whole trace to bytes. `Debug` for trace events is plain data
/// (ids, integer nanoseconds, enum names) — no addresses, no floats — so
/// the rendering is stable for a fixed binary and seed.
fn trace_bytes(rec: &Recorder) -> Vec<u8> {
    let mut buf = String::new();
    for ev in rec.events() {
        buf.push_str(&format!("{ev:?}\n"));
    }
    buf.into_bytes()
}

const GOLDEN_TRACE_HASH: u64 = 0x38b7_c4b1_2123_036d;
const GOLDEN_ANSWER: u64 = 3187;
const GOLDEN_END_NS: u64 = 294_384_659;
const GOLDEN_EVENTS: u64 = 7281;

#[test]
fn fixed_seed_tsp_chaos_trace_is_byte_identical_to_the_pre_swap_golden() {
    let (rec, _params, out) = chaos_tsp();
    let bytes = trace_bytes(&rec);
    let hash = fnv1a(&bytes);
    if std::env::var("OAM_PRINT_GOLDEN").is_ok() {
        println!(
            "GOLDEN_TRACE_HASH = {hash:#018x}\nGOLDEN_ANSWER = {}\nGOLDEN_END_NS = {}\nGOLDEN_EVENTS = {}\n({} trace events, {} bytes)",
            out.answer,
            out.elapsed.as_nanos(),
            out.events,
            rec.len(),
            bytes.len(),
        );
    }
    assert!(rec.len() > 1_000, "trace is non-trivial ({} events)", rec.len());
    assert_eq!(out.answer, GOLDEN_ANSWER, "TSP chaos answer drifted");
    assert_eq!(out.elapsed.as_nanos(), GOLDEN_END_NS, "virtual end time drifted");
    assert_eq!(out.events, GOLDEN_EVENTS, "executed event count drifted");
    assert_eq!(
        hash, GOLDEN_TRACE_HASH,
        "trace bytes drifted (hash {hash:#018x}): the event queue no longer preserves the \
         original (time, seq) execution order"
    );
}

#[test]
fn golden_scenario_is_reproducible_within_one_binary() {
    let (rec_a, _, out_a) = chaos_tsp();
    let (rec_b, _, out_b) = chaos_tsp();
    assert_eq!(trace_bytes(&rec_a), trace_bytes(&rec_b));
    assert_eq!(out_a.answer, out_b.answer);
    assert_eq!(out_a.elapsed, out_b.elapsed);
}
