//! Fault-injection ("chaos") tests: applications must compute the same
//! answers over a lossy, duplicating, delaying fabric — with retransmission
//! and duplicate suppression turned on — as over a perfect one; runs must
//! stay bit-deterministic per seed; and with recovery disabled the machine
//! must *diagnose* the resulting hang instead of panicking or spinning.

use std::cell::Cell;
use std::rc::Rc;

use optimistic_active_messages::apps::tsp::TspParams;
use optimistic_active_messages::apps::{triangle, tsp, System};
use optimistic_active_messages::machine::{HangKind, MachineBuilder};
use optimistic_active_messages::model::{
    Dur, FaultPlan, MachineConfig, NodeId, ReliabilityConfig, Time,
};
use optimistic_active_messages::prelude::*;

fn chaos_plan(drop: f64) -> FaultPlan {
    FaultPlan::drop_only(drop).with_dup(drop).with_delay(drop, Dur::from_micros(20))
}

fn reliable_cfg(nodes: usize, drop: f64) -> MachineConfig {
    MachineConfig::cm5(nodes)
        .with_fault_plan(chaos_plan(drop))
        .with_reliability(ReliabilityConfig::retransmitting())
}

pub struct EchoState;

define_rpc_service! {
    /// Minimal service for targeted reliability tests.
    service Echo {
        state EchoState;

        /// Echo with increment.
        rpc echo(ctx, st, x: u64) -> u64 {
            let _ = (ctx, st);
            x + 1
        }
    }
}

#[test]
fn triangle_survives_1pct_and_5pct_chaos_with_the_fault_free_answer() {
    let (sol, pos, _) = triangle::sequential(5);
    let expect = (sol << 40) | pos;
    let baseline = triangle::run_configured(System::Orpc, MachineConfig::cm5(4), 5, 1);
    assert_eq!(baseline.answer, expect);
    for drop in [0.01, 0.05] {
        let out = triangle::run_configured(System::Orpc, reliable_cfg(4, drop), 5, 1);
        assert_eq!(out.answer, expect, "answer must survive {drop} chaos");
        let t = out.stats.total();
        assert!(t.packets_dropped > 0, "plan actually dropped packets at {drop}");
        assert!(t.retransmits > 0, "losses were recovered by retransmission at {drop}");
        assert!(out.elapsed >= baseline.elapsed, "recovery costs time, never saves it");
    }
}

#[test]
fn tsp_survives_5pct_chaos_with_the_fault_free_answer() {
    let params = TspParams::default(); // 12 cities, the paper's instance
    let (best, _, _) = tsp::sequential(params);
    for system in [System::Orpc, System::Trpc] {
        let out = tsp::run_configured(system, reliable_cfg(5, 0.05), params);
        assert_eq!(out.answer, best as u64, "{}", system.label());
        let t = out.stats.total();
        assert!(t.packets_dropped > 0);
        assert!(t.retransmits > 0);
        assert!(
            t.dups_suppressed > 0,
            "retransmissions + fabric duplicates must hit the suppression table ({})",
            system.label()
        );
    }
}

#[test]
fn tsp_chaos_survives_a_mid_run_node_stall() {
    let params = TspParams { ncities: 10, prefix_len: 4, ..Default::default() };
    let (best, _, _) = tsp::sequential(params);
    // Slave 2 freezes for 30 ms mid-run: its polls find nothing, packets
    // pile up in its FIFOs, callers retransmit into the void. The answer
    // must still come out right once it thaws.
    let plan = chaos_plan(0.01).with_stall(
        NodeId(2),
        Time::from_nanos(2_000_000),
        Time::from_nanos(32_000_000),
    );
    let cfg = MachineConfig::cm5(4)
        .with_fault_plan(plan)
        .with_reliability(ReliabilityConfig::retransmitting());
    let out = tsp::run_configured(System::Orpc, cfg, params);
    assert_eq!(out.answer, best as u64);
    assert!(out.stats.total().retransmits > 0);
}

#[test]
fn chaos_runs_are_bit_deterministic_per_seed() {
    let run_tsp = |seed: u64| {
        let params = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
        let cfg = reliable_cfg(4, 0.05).with_seed(seed);
        let out = tsp::run_configured(System::Orpc, cfg, params);
        (out.answer, out.elapsed, out.stats)
    };
    let a = run_tsp(7);
    let b = run_tsp(7);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "identical completion time");
    assert_eq!(a.2, b.2, "identical per-node statistics, counter for counter");
    let c = run_tsp(8);
    assert!(a.1 != c.1 || a.2 != c.2, "a different seed must shuffle the fault draws");

    let run_triangle = |drop: f64| {
        let out = triangle::run_configured(System::Orpc, reliable_cfg(4, drop), 5, 1);
        (out.answer, out.elapsed, out.stats)
    };
    let t1 = run_triangle(0.05);
    let t2 = run_triangle(0.05);
    assert_eq!(t1.0, t2.0);
    assert_eq!(t1.1, t2.1);
    assert_eq!(t1.2, t2.2);
}

#[test]
fn adding_a_fault_plan_changes_nothing_but_the_faults_when_probability_is_zero() {
    // A present-but-zero plan turns the dedup machinery on; the answer and
    // message counts must be unaffected.
    let params = TspParams { ncities: 8, prefix_len: 3, ..Default::default() };
    let base = tsp::run_configured(System::Orpc, MachineConfig::cm5(3), params);
    let zero = tsp::run_configured(
        System::Orpc,
        MachineConfig::cm5(3).with_fault_plan(FaultPlan::drop_only(0.0)),
        params,
    );
    assert_eq!(base.answer, zero.answer);
    assert_eq!(base.stats.total().messages_sent, zero.stats.total().messages_sent);
    assert_eq!(base.stats.total().dups_suppressed, 0);
    assert_eq!(zero.stats.total().packets_dropped, 0);
}

#[test]
fn without_retransmission_a_lossy_run_yields_a_hang_report_not_a_hang() {
    // Certain loss, no recovery: the caller's request evaporates and the
    // machine goes quiet with node 0 spinning on a reply that cannot come.
    let cfg = MachineConfig::cm5(2).with_fault_plan(FaultPlan::drop_only(1.0));
    let machine = MachineBuilder::from_config(cfg).build();
    for node in machine.nodes() {
        Echo::register_all(machine.rpc(), node.id(), Rc::new(EchoState), RpcMode::Orpc);
    }
    let report = machine
        .run_with_watchdog(Time::from_nanos(1_000_000_000), |env| async move {
            if env.id().index() == 0 {
                let _ = Echo::echo::call(env.rpc(), env.node(), NodeId(1), 1)
                    .await
                    .expect("reply decode");
            }
        })
        .expect_err("a run with certain loss and no retransmission cannot complete");
    assert_eq!(report.kind, HangKind::Deadlock, "quiet machine, not budget overrun");
    let stuck: Vec<usize> = report.stuck_nodes().map(|n| n.diag.node.index()).collect();
    assert_eq!(stuck, vec![0], "exactly the caller is stuck");
    assert_eq!(report.nodes[0].outstanding_calls, 1, "its lost call is visible");
    assert_eq!(report.nodes[0].diag.spinning, 1, "…as a spinning thread");
    assert!(report.nodes[1].main_done);
    let text = report.to_string();
    assert!(text.contains("deadlock") && text.contains("STUCK"), "{text}");
}

#[test]
fn a_live_but_unfinished_run_reports_budget_exceeded() {
    // Retransmission ON under certain loss: timers fire forever, so the
    // machine is live at any budget — the watchdog must say so rather than
    // claim deadlock.
    let cfg = MachineConfig::cm5(2)
        .with_fault_plan(FaultPlan::drop_only(1.0))
        .with_reliability(ReliabilityConfig::retransmitting());
    let machine = MachineBuilder::from_config(cfg).build();
    for node in machine.nodes() {
        Echo::register_all(machine.rpc(), node.id(), Rc::new(EchoState), RpcMode::Orpc);
    }
    let report = machine
        .run_with_watchdog(Time::from_nanos(50_000_000), |env| async move {
            if env.id().index() == 0 {
                let _ = Echo::echo::call(env.rpc(), env.node(), NodeId(1), 1)
                    .await
                    .expect("reply decode");
            }
        })
        .expect_err("certain loss cannot complete even with retransmission");
    assert_eq!(report.kind, HangKind::BudgetExceeded);
    assert!(report.total_outstanding_calls() >= 1);
}

pub struct BumpState {
    pub hits: Rc<Cell<u64>>,
}

define_rpc_service! {
    /// One-way delivery test service.
    service Bump {
        state BumpState;

        /// Count an arrival.
        oneway bump(ctx, st) {
            let _ = ctx;
            st.hits.set(st.hits.get() + 1);
        }
    }
}

#[test]
fn overloaded_service_survives_chaos_and_a_server_stall() {
    use optimistic_active_messages::apps::service::{run, ServiceParams};
    // 5% drop/dup/delay on every link, plus the (only) server frozen for
    // 6 ms mid-run: longer than the 5 ms request deadline, so the stall
    // window forces caller-side expiries, and the thaw-time backlog forces
    // admission shedding. Every arrival must still resolve exactly once,
    // and the whole story must replay bit-for-bit from the seed.
    let params = || ServiceParams {
        load_x100: 200,
        arrivals: 96,
        fault: Some(chaos_plan(0.05).with_stall(
            NodeId(0),
            Time::from_nanos(2_000_000),
            Time::from_nanos(8_000_000),
        )),
        ..ServiceParams::default()
    };
    let a = run(params());
    let t = a.app.stats.total();
    assert!(t.packets_dropped > 0, "the plan did bite");
    assert!(t.retransmits > 0, "losses were recovered by retransmission");
    assert!(a.shed > 0, "the post-thaw backlog must trip admission control");
    assert!(a.completed > 0, "the service still does useful work under chaos");
    let arrivals = (params().drivers as u64) * u64::from(params().arrivals);
    assert_eq!(
        a.completed + a.abandoned,
        arrivals,
        "every arrival resolves exactly once: a reply or a final give-up"
    );
    // Deterministic shedding: the same seed replays the same overload
    // story, shed for shed, counter for counter.
    let b = run(params());
    assert_eq!(a.app.answer, b.app.answer);
    assert_eq!(a.app.elapsed, b.app.elapsed);
    assert_eq!(
        (a.completed, a.shed, a.expired, a.abandoned),
        (b.completed, b.shed, b.expired, b.abandoned)
    );
    assert_eq!(a.app.stats, b.app.stats, "identical per-node statistics, counter for counter");
}

#[test]
fn streaming_scans_survive_5pct_chaos_and_retire_every_session() {
    use optimistic_active_messages::apps::service::{run, ServiceParams};
    // Heavy arrivals fetch their scans as chunked sessions over a 5%
    // drop/dup/delay fabric. Chunks ride the reliable oneway path and the
    // Open/Close pair rides the reliable request path, so the protocol
    // must come out whole: every opened session ends in exactly one Close
    // or exactly one Cancel, and the chunk totals match what the Close
    // frames promised.
    let params = || ServiceParams {
        load_x100: 150,
        arrivals: 64,
        streaming: true,
        fault: Some(chaos_plan(0.05)),
        ..ServiceParams::default()
    };
    let a = run(params());
    let t = a.app.stats.total();
    assert!(t.packets_dropped > 0, "the plan did bite");
    assert!(t.retransmits > 0, "losses were recovered by retransmission");
    assert!(a.sessions_opened > 0, "heavy arrivals opened streaming sessions");
    assert_eq!(
        a.sessions_opened,
        a.sessions_closed + a.sessions_cancelled,
        "every session ends in exactly one Close or one Cancel"
    );
    assert!(t.chunks_received > 0, "sessions streamed chunks through the chaos");
    let arrivals = (params().drivers as u64) * u64::from(params().arrivals);
    assert_eq!(a.completed + a.abandoned, arrivals, "every arrival resolves exactly once");
    // And the whole streaming story replays bit-for-bit from the seed.
    let b = run(params());
    assert_eq!(a.app.answer, b.app.answer);
    assert_eq!(a.app.elapsed, b.app.elapsed);
    assert_eq!(
        (a.sessions_opened, a.sessions_closed, a.sessions_cancelled),
        (b.sessions_opened, b.sessions_closed, b.sessions_cancelled)
    );
    assert_eq!(a.app.stats, b.app.stats, "identical per-node statistics, counter for counter");
}

#[test]
fn reliable_oneway_calls_are_delivered_exactly_once_under_chaos() {
    let hits = Rc::new(Cell::new(0u64));
    const SENDS: u64 = 40;
    let cfg = reliable_cfg(2, 0.05);
    let machine = MachineBuilder::from_config(cfg).build();
    for node in machine.nodes() {
        let st = Rc::new(BumpState { hits: Rc::clone(&hits) });
        Bump::register_all(machine.rpc(), node.id(), st, RpcMode::Orpc);
    }
    let report = machine.run(|env| async move {
        if env.id().index() == 0 {
            for _ in 0..SENDS {
                Bump::bump::send(env.rpc(), env.node(), NodeId(1)).await;
            }
        }
        // The run ends only when the sim quiesces, i.e. all acks and
        // retransmission timers have resolved.
        env.barrier().await;
    });
    assert_eq!(hits.get(), SENDS, "at-most-once + retransmission = exactly once");
    let t = report.stats.total();
    assert!(t.packets_dropped > 0, "the plan did bite");
}
