//! Workspace-level integration tests: the full stack exercised through
//! the meta-crate's public API.

use std::cell::Cell;
use std::rc::Rc;

use optimistic_active_messages::apps::sor::SorParams;
use optimistic_active_messages::apps::tsp::TspParams;
use optimistic_active_messages::apps::water::{WaterParams, WaterVariant};
use optimistic_active_messages::apps::{sor, triangle, tsp, water, System};
use optimistic_active_messages::machine::Reducer;
use optimistic_active_messages::prelude::*;

pub struct PingState {
    pub hits: Cell<u64>,
}

define_rpc_service! {
    /// Minimal service for plumbing tests.
    service Ping {
        state PingState;

        /// Count and echo.
        rpc ping(ctx, st, x: u64) -> u64 {
            st.hits.set(st.hits.get() + 1);
            x + 1
        }
    }
}

fn build_ping(nodes: usize, mode: RpcMode) -> (Machine, Rc<Vec<Rc<PingState>>>) {
    let machine = MachineBuilder::new(nodes).build();
    let states: Vec<Rc<PingState>> =
        (0..nodes).map(|_| Rc::new(PingState { hits: Cell::new(0) })).collect();
    for (node, st) in machine.nodes().iter().zip(&states) {
        Ping::register_all(machine.rpc(), node.id(), Rc::clone(st), mode);
    }
    (machine, Rc::new(states))
}

#[test]
fn all_to_all_rpc_traffic_is_exact() {
    for mode in [RpcMode::Orpc, RpcMode::Trpc] {
        let (machine, states) = build_ping(6, mode);
        let st = Rc::clone(&states);
        machine.run(move |env| {
            let _ = Rc::clone(&st);
            async move {
                for off in 1..env.nprocs() {
                    let dst = NodeId((env.id().index() + off) % env.nprocs());
                    let r = Ping::ping::call(env.rpc(), env.node(), dst, off as u64)
                        .await
                        .expect("reply decode");
                    assert_eq!(r, off as u64 + 1);
                }
                env.barrier().await;
            }
        });
        let total: u64 = states.iter().map(|s| s.hits.get()).sum();
        assert_eq!(total, 6 * 5, "{mode:?}");
    }
}

#[test]
fn orpc_machine_wide_statistics_are_consistent() {
    let (machine, _) = build_ping(4, RpcMode::Orpc);
    let report = machine.run(|env| async move {
        for i in 0..8u64 {
            let dst = NodeId((env.id().index() + 1) % env.nprocs());
            Ping::ping::call(env.rpc(), env.node(), dst, i).await.expect("reply decode");
        }
        env.barrier().await;
    });
    let t = report.stats.total();
    assert_eq!(t.rpcs_sync, 32);
    assert_eq!(t.oam_attempts, 32);
    assert_eq!(t.oam_successes, 32);
    // Sent = received: requests + replies, all drained at quiescence.
    assert_eq!(t.messages_sent, t.messages_received);
    assert_eq!(machine.network().in_flight(), 0);
}

#[test]
fn every_application_cross_checks_across_all_systems() {
    // Triangle.
    let (sol, pos, _) = triangle::sequential(4);
    let tri_expect = (sol << 40) | pos;
    for s in System::ALL {
        assert_eq!(triangle::run(s, 3, 4).answer, tri_expect, "triangle {}", s.label());
    }
    // TSP.
    let params = TspParams { ncities: 8, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(params);
    for s in System::ALL {
        assert_eq!(tsp::run(s, 2, params).answer, best as u64, "tsp {}", s.label());
    }
    // SOR.
    let sp = SorParams { rows: 16, cols: 8, iters: 4 };
    let (ck, _) = sor::sequential(sp);
    for s in System::ALL {
        assert_eq!(sor::run(s, 4, sp).answer, ck, "sor {}", s.label());
    }
    // Water: all five variants agree at fixed P.
    let wp = WaterParams { molecules: 16, iters: 2 };
    let answers: Vec<u64> =
        WaterVariant::ALL.iter().map(|v| water::run(*v, 4, wp).outcome.answer).collect();
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "water variants: {answers:?}");
}

#[test]
fn whole_machine_runs_are_bit_deterministic() {
    let run_once = || {
        let (machine, _) = build_ping(5, RpcMode::Orpc);
        let red = Reducer::new(machine.collectives(), |a: &u64, b: &u64| a + b);
        let out = Rc::new(Cell::new(0u64));
        let o = Rc::clone(&out);
        let report = machine.run(move |env| {
            let red = red.clone();
            let o = Rc::clone(&o);
            async move {
                let mut acc = 0;
                for i in 0..5u64 {
                    let dst = NodeId((env.id().index() + 1 + i as usize) % env.nprocs());
                    acc += Ping::ping::call(env.rpc(), env.node(), dst, i)
                        .await
                        .expect("reply decode");
                }
                let total = red.reduce(env.node(), acc).await;
                if env.id().index() == 0 {
                    o.set(total);
                }
            }
        });
        (report.end_time, report.events, out.get())
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn abort_strategies_agree_on_application_results() {
    let params = TspParams { ncities: 9, prefix_len: 3, ..Default::default() };
    let (best, _, _) = tsp::sequential(params);
    for strategy in [AbortStrategy::Promote, AbortStrategy::Rerun, AbortStrategy::Nack] {
        let cfg = MachineConfig::cm5(5).with_abort_strategy(strategy);
        let out = tsp::run_configured(System::Orpc, cfg, params);
        assert_eq!(out.answer, best as u64, "{strategy:?}");
    }
}

#[test]
fn queue_policies_agree_on_application_results() {
    let (sol, pos, _) = triangle::sequential(5);
    let expect = (sol << 40) | pos;
    for policy in [QueuePolicy::Front, QueuePolicy::Back] {
        let cfg = MachineConfig::cm5(4).with_queue_policy(policy);
        let out = triangle::run_configured(System::Trpc, cfg, 5, 1);
        assert_eq!(out.answer, expect, "{policy:?}");
    }
}

#[test]
fn alewife_like_machine_still_computes_correctly() {
    let (sol, pos, _) = triangle::sequential(5);
    let expect = (sol << 40) | pos;
    let cfg = MachineConfig::alewife_like(4);
    let out = triangle::run_configured(System::Orpc, cfg, 5, 1);
    assert_eq!(out.answer, expect);
    // Shallow buffering must actually generate backpressure.
    assert!(out.stats.total().send_backpressure_events > 0);
}

#[test]
fn paper_headline_holds_end_to_end() {
    // "For applications that send many short messages, the ORPC and AM
    // implementations are up to three times faster than the TRPC
    // implementations" — at a reduced scale the gap is already >1.5x.
    let am = triangle::run(System::HandAm, 8, 5).elapsed;
    let orpc = triangle::run(System::Orpc, 8, 5).elapsed;
    let trpc = triangle::run(System::Trpc, 8, 5).elapsed;
    let ratio_orpc = trpc.as_secs_f64() / orpc.as_secs_f64();
    let ratio_am = orpc.as_secs_f64() / am.as_secs_f64();
    assert!(ratio_orpc > 1.5, "TRPC/ORPC = {ratio_orpc}");
    assert!(ratio_am < 1.25, "ORPC within 25% of hand-coded AM, got {ratio_am}");
}
